"""repro — reproduction of Khabbazian & Kowalski, PODC 2011:
"Time-efficient randomized multiple-message broadcast in radio networks".

Quickstart
----------
>>> from repro import MultipleMessageBroadcast, grid, uniform_random_placement
>>> net = grid(5, 5)
>>> packets = uniform_random_placement(net, k=10, seed=1)
>>> result = MultipleMessageBroadcast(net, seed=7).run(packets)
>>> result.success, result.total_rounds  # doctest: +SKIP
(True, ...)

Package map
-----------
- :mod:`repro.radio` — the radio-network model (collision semantics).
- :mod:`repro.topology` — graph generators and metrics.
- :mod:`repro.coding` — GF(2) linear algebra and network coding.
- :mod:`repro.primitives` — Decay, BGI broadcast, leader election, BFS.
- :mod:`repro.core` — the paper's four-stage algorithm.
- :mod:`repro.baselines` — BII-style gossip and other comparators.
- :mod:`repro.analysis` — the paper's lemma bounds and predictors.
- :mod:`repro.experiments` — workloads, trial runner, table rendering.
- :mod:`repro.resilience` — fault schedules and self-healing supervision.
"""

from repro.apps import aggregate_convergecast
from repro.baselines import (
    decay_gossip_broadcast,
    sequential_bgi_broadcast,
    tdma_flood_broadcast,
    uncoded_pipeline_broadcast,
)
from repro.coding import (
    GroupDecoder,
    HardenedGroupDecoder,
    Packet,
    SubsetXorEncoder,
    packet_checksum,
    seal_message,
    verify_message,
)
from repro.coding.packets import make_packets, required_packet_bits
from repro.core import (
    ENGINES,
    AlgorithmParameters,
    MultiBroadcastResult,
    MultipleMessageBroadcast,
    get_default_engine,
    set_default_engine,
)
from repro.dynamic import (
    BatchedDynamicBroadcast,
    BurstProcess,
    ChurnNetwork,
    ChurnSchedule,
    ContinuousBroadcast,
    ContinuousPolicy,
    ContinuousResult,
    PeriodicProcess,
    PoissonProcess,
    build_arrival_process,
    burst_arrivals,
    churn_from_mobility,
    periodic_arrivals,
    poisson_arrivals,
    random_churn_schedule,
)
from repro.mac import AbstractMacLayer, mac_flood_broadcast
from repro.experiments import (
    all_nodes_one_packet,
    hotspot_placement,
    single_source_burst,
    uniform_random_placement,
)
from repro.radio import RadioNetwork, SinrRadioNetwork, make_rng
from repro.resilience import (
    AdversaryStack,
    BudgetedJammer,
    CorruptionChannel,
    DynamicFaultNetwork,
    FaultSchedule,
    ReactiveJammer,
    SupervisedBroadcast,
    SupervisionPolicy,
    make_adversary,
    random_crash_schedule,
    run_adversarial_trial,
)
from repro.topology import (
    balanced_tree,
    barbell,
    caterpillar,
    clique,
    grid,
    hypercube,
    line,
    mobile_rgg,
    random_connected_gnp,
    random_geometric,
    ring,
    star,
    torus,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractMacLayer",
    "AdversaryStack",
    "AlgorithmParameters",
    "ENGINES",
    "get_default_engine",
    "set_default_engine",
    "BatchedDynamicBroadcast",
    "BudgetedJammer",
    "BurstProcess",
    "ChurnNetwork",
    "ChurnSchedule",
    "ContinuousBroadcast",
    "ContinuousPolicy",
    "ContinuousResult",
    "CorruptionChannel",
    "DynamicFaultNetwork",
    "FaultSchedule",
    "GroupDecoder",
    "HardenedGroupDecoder",
    "MultiBroadcastResult",
    "MultipleMessageBroadcast",
    "Packet",
    "PeriodicProcess",
    "PoissonProcess",
    "RadioNetwork",
    "ReactiveJammer",
    "SinrRadioNetwork",
    "SubsetXorEncoder",
    "SupervisedBroadcast",
    "SupervisionPolicy",
    "aggregate_convergecast",
    "all_nodes_one_packet",
    "balanced_tree",
    "barbell",
    "build_arrival_process",
    "burst_arrivals",
    "caterpillar",
    "churn_from_mobility",
    "clique",
    "decay_gossip_broadcast",
    "grid",
    "hotspot_placement",
    "hypercube",
    "line",
    "mac_flood_broadcast",
    "make_adversary",
    "mobile_rgg",
    "make_packets",
    "make_rng",
    "packet_checksum",
    "periodic_arrivals",
    "poisson_arrivals",
    "random_churn_schedule",
    "random_connected_gnp",
    "random_crash_schedule",
    "random_geometric",
    "required_packet_bits",
    "ring",
    "run_adversarial_trial",
    "seal_message",
    "sequential_bgi_broadcast",
    "single_source_burst",
    "star",
    "tdma_flood_broadcast",
    "torus",
    "uncoded_pipeline_broadcast",
    "uniform_random_placement",
    "verify_message",
]
