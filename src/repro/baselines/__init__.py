"""Baseline multiple-message broadcast algorithms for comparison.

The paper's improvement target is Bar-Yehuda–Israeli–Itai (SICOMP 1993),
whose amortized cost is ``O(log n·logΔ)`` per packet (in expectation).
The BII paper's internal pseudocode is not reproduced verbatim here (see
DESIGN.md's substitution note); instead two bound-faithful comparators are
provided:

- :func:`decay_gossip_broadcast` — Decay-scheduled uncoded random-push
  gossip: every node holding packets contends in every Decay epoch and,
  when it transmits, sends one uniformly random packet it holds.  This is
  the classic uncoded multiple-broadcast dynamic and exhibits the extra
  logarithmic factor the paper's coding removes.
- :func:`sequential_bgi_broadcast` — each packet broadcast one after
  another with the single-message BGI protocol; amortized
  ``Θ((D + log n)·logΔ)``, the naive upper baseline.

The third comparator — uncoded ``FORWARD`` inside the paper's own pipeline
— is the ``coding_enabled=False`` flag of
:class:`repro.core.AlgorithmParameters` (ablation A1), wrapped here as
:func:`uncoded_pipeline_broadcast`.
"""

from repro.baselines.gossip import GossipResult, decay_gossip_broadcast
from repro.baselines.round_robin import (
    RoundRobinFloodResult,
    round_robin_flood_broadcast,
)
from repro.baselines.sequential import (
    SequentialBroadcastResult,
    sequential_bgi_broadcast,
)
from repro.baselines.tdma import (
    TdmaFloodResult,
    distance2_coloring,
    tdma_flood_broadcast,
    verify_distance2_coloring,
)
from repro.baselines.uncoded import uncoded_pipeline_broadcast

__all__ = [
    "GossipResult",
    "RoundRobinFloodResult",
    "SequentialBroadcastResult",
    "TdmaFloodResult",
    "decay_gossip_broadcast",
    "round_robin_flood_broadcast",
    "distance2_coloring",
    "sequential_bgi_broadcast",
    "tdma_flood_broadcast",
    "uncoded_pipeline_broadcast",
    "verify_distance2_coloring",
]
