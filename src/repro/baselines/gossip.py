"""Uncoded random-push gossip over Decay epochs (the BII-style baseline).

Every node that knows at least one packet participates in every Decay
epoch.  Each time a node transmits it sends one uniformly random packet
from the set it currently knows (a fresh draw per transmission).  A
receiver adds the packet to its set and participates from the next epoch.

This is the natural uncoded multiple-message broadcast dynamic: all
packets progress concurrently, each reception delivers one concrete packet
(possibly a duplicate), and completion suffers the coupon-collector and
contention overheads that give the ``O(k·log n·logΔ)``-type behaviour the
paper attributes to the BII line of work.  See DESIGN.md for the
substitution note.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.coding.packets import Packet
from repro.primitives.decay import decay_slots
from repro.radio.errors import SimulationLimitExceeded
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class GossipResult:
    """Outcome of a gossip run.

    ``rounds`` is the first round by which every node knew every packet
    (or the budget, if incomplete).
    """

    rounds: int
    epochs: int
    complete: bool
    k: int
    transmissions: int
    duplicate_receptions: int

    @property
    def amortized_rounds_per_packet(self) -> float:
        return self.rounds / max(self.k, 1)


def decay_gossip_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    rng: np.random.Generator,
    max_epochs: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    raise_on_budget: bool = False,
    selection: str = "uniform",
    engine: Optional[str] = None,
) -> GossipResult:
    """Run uncoded random-push gossip until everyone knows all packets.

    Parameters
    ----------
    max_epochs:
        Epoch budget.  Defaults to a generous
        ``8·(k + D + log n)·log(n+k)`` so that completion-time measurement
        is rarely truncated.
    engine:
        Optional simulation-engine override (``"fast"``/``"reference"``)
        pushed into ``network``; ``None`` keeps the network's current
        engine.  Both engines are observationally identical.
    selection:
        Which known packet a transmitter pushes (ablation A6):

        - ``"uniform"`` — a fresh uniform draw per transmission (default);
        - ``"round_robin"`` — each node cycles deterministically through
          its known packets, so repeated transmissions never repeat a
          packet until all have been sent once;
        - ``"newest_first"`` — push the most recently learned packet
          (fast spreading of new information, at the risk of starving old
          packets).
    """
    if engine is not None:
        network.set_engine(engine)
    n = network.n
    k = len(packets)
    if k == 0:
        return GossipResult(0, 0, True, 0, 0, 0)

    pids = [p.pid for p in packets]
    pid_index = {pid: i for i, pid in enumerate(pids)}
    # known[v] = boolean vector over packet indices
    known = np.zeros((n, k), dtype=bool)
    for p in packets:
        known[p.origin, pid_index[p.pid]] = True

    if max_epochs is None:
        ln = math.log2(max(n + k, 2))
        max_epochs = max(1, math.ceil(8 * (k + network.diameter + ln) * ln))
    if selection not in ("uniform", "round_robin", "newest_first"):
        raise ValueError(f"unknown selection policy {selection!r}")

    slots = decay_slots(network.max_degree)
    rounds = 0
    transmissions = 0
    duplicates = 0
    complete = bool(known.all())
    epochs_run = 0

    known_counts = known.sum(axis=1)
    cursors = np.zeros(n, dtype=np.int64)          # round_robin state
    newest: List[List[int]] = [[] for _ in range(n)]  # newest_first stacks
    for p in packets:
        newest[p.origin].append(pid_index[p.pid])

    def pick_packet(v: int) -> int:
        if selection == "round_robin":
            mine = np.nonzero(known[v])[0]
            pick = int(mine[cursors[v] % len(mine)])
            cursors[v] += 1
            return pick
        if selection == "newest_first" and newest[v]:
            # transmit the most recent, then rotate it to the back so the
            # policy is a recency-ordered cycle (plain newest-only would
            # starve old packets)
            stack = newest[v]
            pick = stack[-1]
            stack.insert(0, stack.pop())
            return pick
        mine = np.nonzero(known[v])[0]
        return int(mine[rng.integers(0, len(mine))])

    for _ in range(max_epochs):
        if complete:
            break
        epochs_run += 1
        participants = np.nonzero(known_counts > 0)[0]
        for s in range(slots):
            p_tx = 2.0 ** -(s + 1)
            coins = rng.random(len(participants)) < p_tx
            hot = participants[coins]
            tx: Dict[int, int] = {}
            for v in hot:
                v = int(v)
                tx[v] = pick_packet(v)
                transmissions += 1
            received = network.resolve_round(tx)
            if trace is not None:
                trace.observe(rounds + s, tx, received)
            for receiver, pidx in received.items():
                if known[receiver, pidx]:
                    duplicates += 1
                else:
                    known[receiver, pidx] = True
                    known_counts[receiver] += 1
                    if selection == "newest_first":
                        newest[receiver].append(pidx)
        rounds += slots
        complete = bool(known.all())

    if not complete and raise_on_budget:
        raise SimulationLimitExceeded(
            f"gossip did not complete within {max_epochs} epochs",
            rounds_used=rounds,
        )
    return GossipResult(
        rounds=rounds,
        epochs=epochs_run,
        complete=complete,
        k=k,
        transmissions=transmissions,
        duplicate_receptions=duplicates,
    )
