"""Deterministic ad-hoc flooding: TDMA by node ID.

The simplest *deterministic* algorithm that needs no topology knowledge
(only unique IDs and the bound ``n``): node ``v`` may transmit only in
rounds ``r ≡ v (mod n)``.  Exactly one node is eligible per round, so no
transmission ever collides — correctness is unconditional — but the
frame length is ``n``, so flooding runs at ``Θ(n)`` amortized rounds per
packet.

This is the determinism end of the spectrum the BGI line of work opened
("an exponential gap between determinism and randomization"): against
the paper's randomized ``O(logΔ)`` amortized cost, the deterministic
ID-frame pays ``Θ(n)`` (experiment E20).  (The best known deterministic
algorithms the paper cites improve on this naive frame but remain
polynomially slower than the randomized bound.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.coding.packets import Packet
from repro.radio.errors import SimulationLimitExceeded
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class RoundRobinFloodResult:
    """Outcome of a deterministic ID-frame flood."""

    rounds: int
    complete: bool
    k: int
    transmissions: int

    @property
    def amortized_rounds_per_packet(self) -> float:
        return self.rounds / max(self.k, 1)


def round_robin_flood_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    max_rounds: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    raise_on_budget: bool = False,
    engine: Optional[str] = None,
) -> RoundRobinFloodResult:
    """Flood all packets deterministically on the ID frame.

    In its slot, a node transmits the oldest packet it knows but has not
    yet transmitted (FIFO).  No randomness, no collisions, no topology
    knowledge; completion is guaranteed within ``n·(n·k + D)`` rounds.
    ``engine`` optionally overrides the network's simulation engine.
    """
    if engine is not None:
        network.set_engine(engine)
    n = network.n
    k = len(packets)
    if k == 0:
        return RoundRobinFloodResult(0, True, 0, 0)

    knows: List[Set[int]] = [set() for _ in range(n)]
    to_send: List[Deque[Packet]] = [deque() for _ in range(n)]
    for p in packets:
        if not 0 <= p.origin < n:
            raise ValueError(f"packet {p.pid} origin out of range")
        if p.pid not in knows[p.origin]:
            knows[p.origin].add(p.pid)
            to_send[p.origin].append(p)

    distinct = len({p.pid for p in packets})
    total_known = sum(len(s) for s in knows)
    target = n * distinct
    if max_rounds is None:
        max_rounds = n * (n * distinct + network.diameter + 1)

    rounds = 0
    transmissions = 0
    while total_known < target and rounds < max_rounds:
        v = rounds % n
        tx: Dict[int, object] = {}
        if to_send[v]:
            tx[v] = to_send[v].popleft()
            transmissions += 1
        received = network.resolve_round(tx)
        if trace is not None:
            trace.observe(rounds, tx, received)
        for receiver, packet in received.items():
            if packet.pid not in knows[receiver]:
                knows[receiver].add(packet.pid)
                to_send[receiver].append(packet)
                total_known += 1
        rounds += 1

    complete = total_known >= target
    if not complete and raise_on_budget:
        raise SimulationLimitExceeded(
            f"round-robin flooding incomplete after {rounds} rounds",
            rounds_used=rounds,
        )
    return RoundRobinFloodResult(
        rounds=rounds,
        complete=complete,
        k=k,
        transmissions=transmissions,
    )
