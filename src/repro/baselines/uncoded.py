"""The paper's pipeline with coding switched off (ablation A1 wrapper).

Runs the full four-stage algorithm but with ``FORWARD`` transmitting
uniformly random *plain* packets instead of coded combinations.  The
pipeline, budgets and air-time are identical, so any delivery gap is
attributable to coding alone.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.coding.packets import Packet
from repro.core.config import AlgorithmParameters
from repro.core.multibroadcast import MultiBroadcastResult, MultipleMessageBroadcast
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike


def uncoded_pipeline_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    params: Optional[AlgorithmParameters] = None,
    seed: SeedLike = None,
) -> MultiBroadcastResult:
    """Run the paper's algorithm with ``coding_enabled=False``."""
    params = (params or AlgorithmParameters()).with_overrides(
        coding_enabled=False
    )
    return MultipleMessageBroadcast(network, params=params, seed=seed).run(
        list(packets)
    )
