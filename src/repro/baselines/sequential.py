"""Sequential per-packet BGI broadcast: the naive upper baseline.

Packets are broadcast one at a time; packet ``i+1`` starts only after
packet ``i``'s fixed broadcast window of ``O((D + log n)·logΔ)`` rounds
elapses.  (Nodes cannot detect global completion, so a fixed window is the
honest schedule.)  Amortized cost per packet is ``Θ((D + log n)·logΔ)`` —
the baseline the BII 1993 result already improves on, included to anchor
the comparison from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.coding.packets import Packet
from repro.primitives.bgi_broadcast import bgi_broadcast, default_broadcast_epochs
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class SequentialBroadcastResult:
    rounds: int
    complete: bool
    k: int
    per_packet_complete: List[bool]

    @property
    def amortized_rounds_per_packet(self) -> float:
        return self.rounds / max(self.k, 1)


def sequential_bgi_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    rng: np.random.Generator,
    epochs_per_packet: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    engine: Optional[str] = None,
) -> SequentialBroadcastResult:
    """Broadcast each packet in its own fixed BGI window, back to back.

    ``engine`` optionally overrides the network's simulation engine.
    """
    if engine is not None:
        network.set_engine(engine)
    if epochs_per_packet is None:
        epochs_per_packet = default_broadcast_epochs(network)

    rounds = 0
    per_packet: List[bool] = []
    for p in packets:
        result = bgi_broadcast(
            network,
            [p.origin],
            rng,
            message=p.pid,
            epochs=epochs_per_packet,
            stop_early=False,
            trace=trace,
            round_offset=rounds,
        )
        rounds += result.rounds
        per_packet.append(result.complete)

    return SequentialBroadcastResult(
        rounds=rounds,
        complete=all(per_packet) if per_packet else True,
        k=len(packets),
        per_packet_complete=per_packet,
    )
