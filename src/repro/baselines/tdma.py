"""Centralized TDMA flooding: the known-topology comparator.

The paper motivates multi-broadcast with "learning topology of the
underlying network (in order to benefit from efficiency of centralized
solutions)".  This module is that payoff, implemented: once every node
knows the topology (e.g. via one k = n run of the paper's algorithm, as
in ``examples/routing_table_update.py``), all nodes can compute the same
**distance-2 coloring** and run a deterministic, collision-free TDMA
schedule forever after.

- :func:`distance2_coloring` — greedy coloring of the square graph
  (two nodes share a color only if no node neighbors both), so nodes of
  one color class transmit simultaneously without any collision at any
  receiver.  Greedy uses at most ``Δ² + 1`` colors; on bounded-degree
  graphs that is O(1) colors.
- :func:`tdma_flood_broadcast` — pipelined flooding on the TDMA frame:
  in its slot, every node transmits the oldest packet it knows that it
  has not transmitted yet.  Deterministic: no randomness, no losses, no
  retries; completion is guaranteed and exactly measurable.

Amortized cost per packet is ``Θ(χ)`` (the frame length) — constant on
bounded-degree graphs, which beats even the paper's ``O(logΔ)`` once the
topology is known.  The paper's algorithm is what you run *before* you
know the topology; this is what the learned topology buys (E18).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.coding.packets import Packet
from repro.radio.errors import SimulationLimitExceeded
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


def distance2_coloring(network: RadioNetwork) -> List[int]:
    """Greedy coloring of the square graph G².

    Two nodes receive equal colors only if they are non-adjacent AND have
    no common neighbor — then their simultaneous transmissions cannot
    collide at any node.  Deterministic (nodes in id order), so every
    node computes the identical coloring from the shared topology.
    """
    n = network.n
    colors = [-1] * n
    for v in range(n):
        forbidden: Set[int] = set()
        for u in network.neighbors(v):
            u = int(u)
            if colors[u] >= 0:
                forbidden.add(colors[u])
            for w in network.neighbors(u):
                w = int(w)
                if w != v and colors[w] >= 0:
                    forbidden.add(colors[w])
        color = 0
        while color in forbidden:
            color += 1
        colors[v] = color
    return colors


def verify_distance2_coloring(
    network: RadioNetwork, colors: Sequence[int]
) -> List[str]:
    """Check the distance-2 property; returns violations (empty = valid)."""
    violations: List[str] = []
    for v in network.nodes():
        seen: Dict[int, int] = {}
        for u in network.neighbors(v):
            u = int(u)
            c = colors[u]
            if c in seen:
                violations.append(
                    f"nodes {seen[c]} and {u} share color {c} and are both "
                    f"neighbors of {v}"
                )
            seen[c] = u
        if colors[v] in seen:
            violations.append(
                f"node {v} shares color {colors[v]} with its neighbor "
                f"{seen[colors[v]]}"
            )
    return violations


@dataclass
class TdmaFloodResult:
    """Outcome of a TDMA flood (deterministic)."""

    rounds: int
    complete: bool
    k: int
    num_colors: int
    transmissions: int

    @property
    def amortized_rounds_per_packet(self) -> float:
        return self.rounds / max(self.k, 1)


def tdma_flood_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    colors: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    raise_on_budget: bool = False,
    engine: Optional[str] = None,
) -> TdmaFloodResult:
    """Deterministic pipelined flooding on the TDMA frame.

    Round ``r`` belongs to color ``r mod χ``; each node of that color
    transmits the oldest packet it knows but has not yet transmitted
    (FIFO per node).  Every transmission is collision-free by the
    distance-2 property, so each reaches the sender's whole neighborhood.
    ``engine`` optionally overrides the network's simulation engine.
    """
    if engine is not None:
        network.set_engine(engine)
    n = network.n
    k = len(packets)
    if k == 0:
        return TdmaFloodResult(0, True, 0, 0, 0)
    if colors is None:
        colors = distance2_coloring(network)
    num_colors = max(colors) + 1

    by_color: List[List[int]] = [[] for _ in range(num_colors)]
    for v in range(n):
        by_color[colors[v]].append(v)

    knows: List[Set[int]] = [set() for _ in range(n)]
    to_send: List[Deque[Packet]] = [deque() for _ in range(n)]
    for p in packets:
        if not 0 <= p.origin < n:
            raise ValueError(f"packet {p.pid} origin out of range")
        if p.pid not in knows[p.origin]:
            knows[p.origin].add(p.pid)
            to_send[p.origin].append(p)

    distinct = len({p.pid for p in packets})
    total_known = sum(len(s) for s in knows)
    target = n * distinct
    if max_rounds is None:
        # every packet crosses every edge direction at most once per node:
        # <= n*k transmissions, >= 1 per frame when incomplete
        max_rounds = num_colors * (n * distinct + network.diameter + 1)

    rounds = 0
    transmissions = 0
    while total_known < target and rounds < max_rounds:
        color = rounds % num_colors
        tx: Dict[int, object] = {}
        for v in by_color[color]:
            if to_send[v]:
                tx[v] = to_send[v].popleft()
                transmissions += 1
        received = network.resolve_round(tx)
        if trace is not None:
            trace.observe(rounds, tx, received)
        # distance-2 coloring guarantees every transmission is heard by
        # the full neighborhood — the model must agree:
        expected = sum(network.degree(v) for v in tx)
        if len(received) != expected:
            raise AssertionError(
                "TDMA transmissions collided; the coloring is broken"
            )
        for receiver, packet in received.items():
            if packet.pid not in knows[receiver]:
                knows[receiver].add(packet.pid)
                to_send[receiver].append(packet)
                total_known += 1
        rounds += 1

    complete = total_known >= target
    if not complete and raise_on_budget:
        raise SimulationLimitExceeded(
            f"TDMA flooding incomplete after {rounds} rounds",
            rounds_used=rounds,
        )
    return TdmaFloodResult(
        rounds=rounds,
        complete=complete,
        k=k,
        num_colors=num_colors,
        transmissions=transmissions,
    )
