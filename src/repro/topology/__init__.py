"""Topology generators and graph metrics for radio-network experiments.

All generators return :class:`repro.radio.RadioNetwork` instances and are
deterministic given a seed.  The families cover the regimes the paper's
bounds distinguish: long thin graphs (large ``D``), dense graphs (large
``Δ``), and the random geometric graphs typical of ad-hoc deployments.
"""

from repro.topology.generators import (
    balanced_tree,
    barbell,
    caterpillar,
    clique,
    grid,
    hypercube,
    line,
    mobile_rgg,
    random_connected_gnp,
    random_geometric,
    ring,
    star,
    torus,
)
from repro.topology.metrics import (
    degree_histogram,
    graph_summary,
    layers_are_bfs_consistent,
    validate_bfs_tree,
)

__all__ = [
    "balanced_tree",
    "barbell",
    "caterpillar",
    "clique",
    "degree_histogram",
    "graph_summary",
    "grid",
    "hypercube",
    "layers_are_bfs_consistent",
    "line",
    "mobile_rgg",
    "random_connected_gnp",
    "random_geometric",
    "ring",
    "star",
    "torus",
    "validate_bfs_tree",
]
