"""Graph metrics and validators used by protocols, tests, and reports."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.radio.network import RadioNetwork


def graph_summary(network: RadioNetwork) -> Dict[str, float]:
    """The parameters the paper's bounds are stated in: n, D, Δ (+ extras)."""
    degrees = [network.degree(v) for v in network.nodes()]
    return {
        "n": network.n,
        "m": network.num_edges,
        "diameter": network.diameter,
        "max_degree": network.max_degree,
        "min_degree": min(degrees) if degrees else 0,
        "avg_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
    }


def degree_histogram(network: RadioNetwork) -> Dict[int, int]:
    """Mapping degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for v in network.nodes():
        d = network.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def validate_bfs_tree(
    network: RadioNetwork,
    root: int,
    parent: Sequence[int],
    distance: Sequence[int],
) -> List[str]:
    """Check a claimed distributed BFS result against ground truth.

    Returns a list of human-readable violations (empty = valid):

    - the root has parent -1 and distance 0;
    - every other node's parent is an actual neighbor;
    - every node's distance equals the true hop distance from the root;
    - ``distance[v] == distance[parent[v]] + 1``.
    """
    errors: List[str] = []
    truth = network.bfs_distances(root)

    if parent[root] != -1:
        errors.append(f"root {root} has parent {parent[root]} (expected -1)")
    if distance[root] != 0:
        errors.append(f"root {root} has distance {distance[root]} (expected 0)")

    for v in network.nodes():
        if v == root:
            continue
        p = parent[v]
        if p < 0:
            errors.append(f"node {v} never joined the tree")
            continue
        if not network.has_edge(v, p):
            errors.append(f"node {v} claims non-neighbor parent {p}")
        if distance[v] != int(truth[v]):
            errors.append(
                f"node {v} claims distance {distance[v]}, true distance {int(truth[v])}"
            )
        if distance[v] != distance[p] + 1:
            errors.append(
                f"node {v} distance {distance[v]} != parent distance {distance[p]} + 1"
            )
    return errors


def layers_are_bfs_consistent(network: RadioNetwork, root: int) -> bool:
    """Check the BFS-layering property the dissemination pipeline relies on:
    adjacent nodes differ by at most one in hop distance from the root.

    True for every connected graph; exposed as an executable sanity check
    because the spacing-3 pipelining argument depends on it.
    """
    dist = network.bfs_distances(root)
    for u, v in network.edge_list():
        if abs(int(dist[u]) - int(dist[v])) > 1:
            return False
    return True
