"""Graph generators.

Each generator returns a connected :class:`RadioNetwork`.  Random generators
take either a seed or a ``numpy.random.Generator`` and are reproducible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.radio.errors import TopologyError
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng


def line(n: int) -> RadioNetwork:
    """Path on ``n`` nodes: the extreme large-``D`` topology (D = n-1)."""
    if n < 1:
        raise TopologyError("line requires n >= 1")
    edges = [(i, i + 1) for i in range(n - 1)]
    return RadioNetwork(
        edges, n=n, name=f"line(n={n})", diameter_hint=max(1, n - 1)
    )


def ring(n: int) -> RadioNetwork:
    """Cycle on ``n`` nodes (n >= 3)."""
    if n < 3:
        raise TopologyError("ring requires n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return RadioNetwork(
        edges, n=n, name=f"ring(n={n})", diameter_hint=n // 2
    )


def star(n: int) -> RadioNetwork:
    """Star with hub 0: the extreme large-``Δ`` topology (Δ = n-1, D <= 2)."""
    if n < 2:
        raise TopologyError("star requires n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return RadioNetwork(
        edges, n=n, name=f"star(n={n})",
        diameter_hint=1 if n == 2 else 2,
    )


def clique(n: int) -> RadioNetwork:
    """Complete graph: single-hop radio channel (D = 1, Δ = n-1)."""
    if n < 2:
        raise TopologyError("clique requires n >= 2")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return RadioNetwork(
        edges, n=n, name=f"clique(n={n})", diameter_hint=1
    )


def grid(rows: int, cols: int) -> RadioNetwork:
    """4-neighbor mesh: Δ = 4, D = rows + cols - 2."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid requires positive dimensions")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return RadioNetwork(
        edges, n=rows * cols, name=f"grid({rows}x{cols})",
        diameter_hint=max(1, rows + cols - 2),
    )


def balanced_tree(branching: int, depth: int) -> RadioNetwork:
    """Complete ``branching``-ary tree of the given depth (root = node 0)."""
    if branching < 1 or depth < 0:
        raise TopologyError("balanced_tree requires branching >= 1, depth >= 0")
    edges: List[Tuple[int, int]] = []
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return RadioNetwork(
        edges, n=next_id, name=f"tree(b={branching},d={depth})"
    )


def caterpillar(spine: int, legs: int) -> RadioNetwork:
    """A path of ``spine`` nodes, each with ``legs`` pendant leaves.

    Combines large D (the spine) with nontrivial Δ (legs + 2): useful for
    exercising the collection stage's unicast contention.
    """
    if spine < 1 or legs < 0:
        raise TopologyError("caterpillar requires spine >= 1, legs >= 0")
    edges: List[Tuple[int, int]] = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, next_id))
            next_id += 1
    return RadioNetwork(
        edges, n=next_id, name=f"caterpillar(spine={spine},legs={legs})"
    )


def barbell(clique_size: int, path_length: int) -> RadioNetwork:
    """Two cliques joined by a path: simultaneously large Δ and large D."""
    if clique_size < 2 or path_length < 0:
        raise TopologyError("barbell requires clique_size >= 2, path_length >= 0")
    edges: List[Tuple[int, int]] = []
    # left clique on [0, clique_size)
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
    # path
    prev = 0
    next_id = clique_size
    for _ in range(path_length):
        edges.append((prev, next_id))
        prev = next_id
        next_id += 1
    # right clique on [next_id, next_id + clique_size)
    right = list(range(next_id, next_id + clique_size))
    for i in range(len(right)):
        for j in range(i + 1, len(right)):
            edges.append((right[i], right[j]))
    edges.append((prev, right[0]))
    return RadioNetwork(
        edges,
        n=next_id + clique_size,
        name=f"barbell(c={clique_size},p={path_length})",
    )


def random_geometric(
    n: int,
    radius: Optional[float] = None,
    seed: SeedLike = None,
    max_attempts: int = 50,
) -> RadioNetwork:
    """Random geometric graph (unit-disk) on the unit square.

    ``n`` points are placed uniformly at random; nodes within ``radius``
    are connected.  The default radius is slightly above the connectivity
    threshold ``sqrt(ln n / (pi n))``; disconnected draws are retried.
    This is the standard model of an ad-hoc wireless deployment.
    """
    if n < 1:
        raise TopologyError("random_geometric requires n >= 1")
    rng = make_rng(seed)
    if radius is None:
        radius = 1.3 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))

    for _ in range(max_attempts):
        points = rng.random((n, 2))
        # pairwise distances via broadcasting; n is laptop-scale here
        deltas = points[:, None, :] - points[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
        close = dist2 <= radius * radius
        iu = np.triu_indices(n, k=1)
        mask = close[iu]
        edges = list(zip(iu[0][mask].tolist(), iu[1][mask].tolist()))
        try:
            return RadioNetwork(
                edges, n=n, name=f"rgg(n={n},r={radius:.3f})"
            )
        except TopologyError:
            continue
    raise TopologyError(
        f"could not draw a connected RGG(n={n}, r={radius:.3f}) "
        f"in {max_attempts} attempts; increase the radius"
    )


def _disk_edges(points: np.ndarray, radius: float) -> List[Tuple[int, int]]:
    """Unit-disk edge list for a point cloud (sorted, u < v)."""
    n = points.shape[0]
    deltas = points[:, None, :] - points[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
    close = dist2 <= radius * radius
    iu = np.triu_indices(n, k=1)
    mask = close[iu]
    return list(zip(iu[0][mask].tolist(), iu[1][mask].tolist()))


def mobile_rgg(
    n: int,
    epochs: int,
    radius: Optional[float] = None,
    step: float = 0.05,
    seed: SeedLike = None,
    max_attempts: int = 50,
) -> Tuple[RadioNetwork, List[List[Tuple[int, int]]]]:
    """A mobility trace: per-epoch unit-disk edge sets under random walk.

    Epoch 0 is a connected RGG exactly as :func:`random_geometric` draws
    it; in each later epoch every node takes a Gaussian step of scale
    ``step`` (clipped to the unit square) and the disk graph is
    recomputed.  Returns the **footprint** network (the union of every
    epoch's edges — connected because epoch 0 is) plus the per-epoch
    edge sets; lower the pair to a churn schedule with
    :func:`repro.dynamic.churn.churn_from_mobility`.

    Later epochs may individually be disconnected — that is the point:
    mobility partitions are real scenarios the repair and oracle layers
    must survive.
    """
    if n < 1:
        raise TopologyError("mobile_rgg requires n >= 1")
    if epochs < 1:
        raise TopologyError("mobile_rgg requires epochs >= 1")
    if step < 0:
        raise TopologyError("mobile_rgg requires step >= 0")
    rng = make_rng(seed)
    if radius is None:
        radius = 1.3 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))

    points: Optional[np.ndarray] = None
    edges0: List[Tuple[int, int]] = []
    for _ in range(max_attempts):
        candidate = rng.random((n, 2))
        candidate_edges = _disk_edges(candidate, radius)
        try:
            RadioNetwork(candidate_edges, n=n, name="probe")
        except TopologyError:
            continue
        points = candidate
        edges0 = candidate_edges
        break
    if points is None:
        raise TopologyError(
            f"could not draw a connected RGG(n={n}, r={radius:.3f}) "
            f"in {max_attempts} attempts; increase the radius"
        )

    edge_sets: List[List[Tuple[int, int]]] = [edges0]
    for _ in range(1, epochs):
        points = np.clip(points + rng.normal(0.0, step, size=(n, 2)), 0.0, 1.0)
        edge_sets.append(_disk_edges(points, radius))

    footprint = sorted(set().union(*[set(es) for es in edge_sets]))
    network = RadioNetwork(
        footprint, n=n,
        name=f"mobile_rgg(n={n},r={radius:.3f},epochs={epochs})",
    )
    return network, edge_sets


def random_connected_gnp(
    n: int,
    p: Optional[float] = None,
    seed: SeedLike = None,
    max_attempts: int = 50,
) -> RadioNetwork:
    """Erdős–Rényi G(n, p), retried until connected.

    Default ``p`` is twice the connectivity threshold ``ln n / n``.
    """
    if n < 1:
        raise TopologyError("random_connected_gnp requires n >= 1")
    rng = make_rng(seed)
    if p is None:
        p = min(1.0, 2.0 * math.log(max(n, 2)) / n)

    for _ in range(max_attempts):
        iu = np.triu_indices(n, k=1)
        mask = rng.random(len(iu[0])) < p
        edges = list(zip(iu[0][mask].tolist(), iu[1][mask].tolist()))
        try:
            return RadioNetwork(edges, n=n, name=f"gnp(n={n},p={p:.3f})")
        except TopologyError:
            continue
    raise TopologyError(
        f"could not draw a connected G(n={n}, p={p:.3f}) "
        f"in {max_attempts} attempts; increase p"
    )


def hypercube(dimension: int) -> RadioNetwork:
    """Boolean hypercube on ``2^dimension`` nodes: Δ = D = dimension.

    The regime where logΔ and log n coincide (Δ = log2 n) — useful for
    separating the bounds' logΔ and log n factors.
    """
    if dimension < 1:
        raise TopologyError("hypercube requires dimension >= 1")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << b))
        for v in range(n)
        for b in range(dimension)
        if v < v ^ (1 << b)
    ]
    return RadioNetwork(
        edges, n=n, name=f"hypercube(d={dimension})",
        diameter_hint=dimension,
    )


def torus(rows: int, cols: int) -> RadioNetwork:
    """2-D torus (wrap-around grid): Δ = 4, D = ⌊rows/2⌋ + ⌊cols/2⌋.

    Like :func:`grid` but vertex-transitive — no boundary effects, so
    every node sees identical contention statistics.
    """
    if rows < 3 or cols < 3:
        raise TopologyError("torus requires rows, cols >= 3")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.append((v, r * cols + (c + 1) % cols))
            edges.append((v, ((r + 1) % rows) * cols + c))
    return RadioNetwork(
        edges, n=rows * cols, name=f"torus({rows}x{cols})",
        diameter_hint=rows // 2 + cols // 2,
    )
