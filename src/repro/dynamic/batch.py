"""Batched dynamic multiple-message broadcast.

The batching discipline: packets arriving while a broadcast is in flight
queue at their origins; when the broadcast finishes, all queued packets
form the next batch and are broadcast with the *static* four-stage
algorithm.  (If the queue is empty the system idles until the next
arrival.)

Latency of a packet = completion round of its batch − arrival round.
Stability: the static algorithm's amortized cost per packet tends to
``c·logΔ`` for large batches, so arrivals slower than one per ``c·logΔ``
rounds keep queues bounded (service keeps up), while faster arrivals grow
each batch — and because cost is *linear* in batch size with a fixed
additive term, the batched system degrades gracefully rather than
diverging: batch sizes self-regulate toward ``(fixed cost)/(1/λ − c·logΔ)``
below capacity and grow without bound above it (measured in A4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import AlgorithmParameters
from repro.core.multibroadcast import MultiBroadcastResult, MultipleMessageBroadcast
from repro.dynamic.arrivals import PacketArrival
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng


@dataclass
class BatchRecord:
    """One executed batch."""

    start_round: int
    end_round: int
    size: int
    success: bool

    @property
    def duration(self) -> int:
        return self.end_round - self.start_round


@dataclass
class DynamicBroadcastResult:
    """Outcome of a dynamic run.

    Latency statistics cover *delivered* packets (packets of failed
    batches are counted separately; the batched scheme does not retry —
    failures are rare w.h.p. and retrying would mask them).
    """

    total_rounds: int
    delivered: int
    failed: int
    batches: List[BatchRecord] = field(repr=False, default_factory=list)
    latencies: List[int] = field(repr=False, default_factory=list)

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.size for b in self.batches) / len(self.batches)

    @property
    def max_batch_size(self) -> int:
        return max((b.size for b in self.batches), default=0)

    @property
    def throughput(self) -> float:
        """Delivered packets per round over the whole run."""
        return self.delivered / self.total_rounds if self.total_rounds else 0.0

    def latency_percentile(self, p: float) -> float:
        """The ``p``-th latency percentile over delivered packets
        (``p ∈ [0, 100]``; linear interpolation); 0.0 when nothing was
        delivered."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = p / 100.0 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac


class BatchedDynamicBroadcast:
    """Run the static algorithm over dynamically arriving packets.

    Example
    -------
    >>> from repro.topology import grid
    >>> from repro.dynamic import periodic_arrivals
    >>> net = grid(4, 4)
    >>> arrivals = periodic_arrivals(net, period=2000, count=6, seed=1)
    >>> result = BatchedDynamicBroadcast(net, seed=3).run(arrivals)
    >>> result.delivered
    6
    """

    def __init__(
        self,
        network: RadioNetwork,
        params: Optional[AlgorithmParameters] = None,
        seed: SeedLike = None,
        policy: Optional["BatchPolicy"] = None,
    ):
        from repro.dynamic.policies import BatchPolicy, ImmediatePolicy

        self.network = network
        self.params = params or AlgorithmParameters()
        self.rng = make_rng(seed)
        self.policy: BatchPolicy = policy or ImmediatePolicy()

    def run(
        self,
        arrivals: Sequence[PacketArrival],
        max_batches: int = 10_000,
    ) -> DynamicBroadcastResult:
        """Process all ``arrivals``; returns once every batch has run."""
        arrivals = sorted(arrivals, key=lambda a: (a.time, a.packet.pid))
        for a in arrivals:
            if not 0 <= a.packet.origin < self.network.n:
                raise ValueError(
                    f"arrival packet {a.packet.pid} origin out of range"
                )

        now = 0
        next_arrival = 0
        pending: List[PacketArrival] = []
        batches: List[BatchRecord] = []
        latencies: List[int] = []
        delivered = 0
        failed = 0

        def absorb() -> None:
            nonlocal next_arrival
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].time <= now
            ):
                pending.append(arrivals[next_arrival])
                next_arrival += 1

        while next_arrival < len(arrivals) or pending:
            if len(batches) >= max_batches:
                raise RuntimeError("max_batches exceeded (unstable run?)")

            absorb()
            if not pending:
                # Idle until the next arrival.
                now = arrivals[next_arrival].time
                continue

            dispatch_at = self.policy.dispatch_time(
                pending[0].time, len(pending), now
            )
            if (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].time <= dispatch_at
            ):
                # More packets land before the dispatch point: absorb them
                # first so they join this batch.
                now = arrivals[next_arrival].time
                continue
            now = max(now, dispatch_at)

            batch, pending = pending, []
            algorithm = MultipleMessageBroadcast(
                self.network, params=self.params, seed=self.rng
            )
            result: MultiBroadcastResult = algorithm.run(
                [a.packet for a in batch]
            )
            start = now
            now += result.total_rounds
            batches.append(
                BatchRecord(
                    start_round=start,
                    end_round=now,
                    size=len(batch),
                    success=result.success,
                )
            )
            if result.success:
                delivered += len(batch)
                latencies.extend(now - a.time for a in batch)
            else:
                failed += len(batch)

        return DynamicBroadcastResult(
            total_rounds=now,
            delivered=delivered,
            failed=failed,
            batches=batches,
            latencies=latencies,
        )
