"""Open-ended continuous broadcast with SLOs, backpressure, and churn.

:class:`ContinuousBroadcast` is the production-shaped driver the ROADMAP
asks for: instead of one-shot k-broadcast it serves an **open-ended
arrival stream** (a streaming :class:`~repro.dynamic.arrivals
.ArrivalProcess`) over a network whose topology may churn underneath it
(a :class:`~repro.dynamic.churn.ChurnNetwork`, optionally wrapped in a
:class:`~repro.resilience.network.DynamicFaultNetwork` so crashes and
jamming compose).  The paper's four-stage machinery is reused as-is —
the driver owns *when* to run which stage, the paper owns *how*:

- **bounded queues with explicit backpressure** — every origin holds at
  most ``queue_capacity`` packets; overflow is resolved by the
  configured drop policy (``drop_newest``, ``drop_oldest``, or
  ``reject``, i.e. backpressure pushed to the producer);
- **structure reuse with graceful degradation** — leader election and
  BFS run once, then every dispatch reuses the tree; topology churn is
  detected through BFS-tree *invariant* violations (parent departed,
  tree edge severed, joiner unlabeled) and handled by the PR-1
  Decay-based :func:`~repro.resilience.repair.repair_tree` pass —
  a full re-election happens only when the leader itself is gone or
  repair cannot reach live nodes;
- **per-packet latency SLOs** — every delivery is timestamped and
  compared against ``slo_rounds``; the result carries an exact
  power-of-two latency histogram plus the violation count;
- **state handoff** — a departing node's queued packets are handed to
  its smallest-id live neighbor with queue room (each handoff re-homes
  the packet; overflow on handoff is an explicit drop bucket);
- **exact accounting** — ``arrivals == delivered + dropped(*) +
  rejected + in_flight`` holds at every exit, and an append-only audit
  log of every queue transition lets the chaos oracles *recompute* the
  books instead of trusting them.

Determinism: one seeded RNG drives the protocol stages and nothing
else; the arrival process carries its own stream.  Same seeds, same
schedule ⇒ byte-identical run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.packets import Packet
from repro.core.collection import run_collection_stage
from repro.core.config import AlgorithmParameters
from repro.core.dissemination import run_dissemination_stage
from repro.dynamic.arrivals import ArrivalProcess
from repro.dynamic.policies import BatchPolicy, ImmediatePolicy
from repro.primitives.bfs import build_distributed_bfs
from repro.primitives.decay import decay_slots
from repro.primitives.leader_election import elect_leader
from repro.radio.rng import SeedLike, make_rng

#: Queue-overflow resolutions.
DROP_POLICIES = ("drop_newest", "drop_oldest", "reject")


@dataclass(frozen=True)
class ContinuousPolicy:
    """Knobs for the continuous driver.

    Attributes
    ----------
    queue_capacity:
        Per-origin queue bound (the queue-bound oracle audits it).
    drop_policy:
        Overflow resolution: ``drop_newest`` discards the arriving
        packet, ``drop_oldest`` evicts the head to admit it, ``reject``
        refuses admission and charges the producer (backpressure).
    slo_rounds:
        Per-packet latency SLO (arrival → full delivery, in rounds).
    max_batch:
        Cap on packets handed to one dispatch (keeps a single stage
        execution's round cost bounded under bursts).
    max_attempts:
        Delivery attempts per packet before it is dropped as
        undeliverable (collection/dissemination failures re-queue).
    check_interval:
        Idle-time cadence (rounds) of the BFS-invariant check, so
        joiners attach and severed trees heal even with no traffic.
    repair_epoch_factor:
        Decay-epoch budget factor for one repair pass (as in
        :class:`~repro.resilience.supervisor.SupervisionPolicy`).
    """

    queue_capacity: int = 16
    drop_policy: str = "drop_newest"
    slo_rounds: int = 2048
    max_batch: int = 32
    max_attempts: int = 3
    check_interval: int = 64
    repair_epoch_factor: float = 2.0

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}"
            )
        if self.slo_rounds < 1:
            raise ValueError("slo_rounds must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")

    def to_json(self) -> dict:
        return {
            "queue_capacity": self.queue_capacity,
            "drop_policy": self.drop_policy,
            "slo_rounds": self.slo_rounds,
            "max_batch": self.max_batch,
            "max_attempts": self.max_attempts,
            "check_interval": self.check_interval,
            "repair_epoch_factor": self.repair_epoch_factor,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ContinuousPolicy":
        return cls(**data)


@dataclass
class QueuedPacket:
    """One packet waiting at (or handed to) an origin's queue."""

    packet: Packet
    arrival_round: int
    owner: int
    attempts: int = 0


@dataclass(frozen=True)
class AuditEvent:
    """One queue/delivery transition for oracle recomputation."""

    round: int
    kind: str  # arrive/enqueue/reject/drop_queue/drop_handoff/
    #           drop_retry/handoff/dispatch/deliver/requeue/
    #           dropped_quarantine (purged from a queue on conviction)/
    #           drop_quarantine (discarded mid-dispatch, not queued)
    node: int
    pid: int
    arrival_round: int = -1


@dataclass
class JoinerRecord:
    """A joiner's attach progress, for the catch-up oracle.

    ``rejected`` marks joiners the admission gate turned away (forged
    credentials or a quarantined identity) — they never attach, and the
    catch-up oracle must not expect them to.
    """

    node: int
    join_round: int
    attach_round: Optional[int] = None
    departed_again: bool = False
    rejected: bool = False


@dataclass
class ContinuousResult:
    """Outcome of one open-ended run.

    The accounting identity (checked by :meth:`accounting`) is::

        arrivals == delivered + dropped_queue + dropped_handoff
                    + dropped_retry + dropped_quarantine + rejected
                    + in_flight

    (``dropped_quarantine`` counts packets purged when their holder was
    convicted; it is zero whenever no insider machinery is armed.)
    """

    rounds: int
    arrivals: int
    delivered: int
    dropped_queue: int
    dropped_handoff: int
    dropped_retry: int
    rejected: int
    in_flight: int
    dispatches: int
    restructures: int
    repairs: int
    handoffs: int
    max_queue_len: int
    max_cycle_rounds: int
    repair_round_budget: int
    slo_rounds: int
    slo_violations: int
    latency_histogram: Dict[int, int] = field(default_factory=dict)
    deliveries: List[Tuple[int, int, int]] = field(  # (pid, arrival, deliver)
        repr=False, default_factory=list
    )
    joiners: List[JoinerRecord] = field(repr=False, default_factory=list)
    audit_log: List[AuditEvent] = field(repr=False, default_factory=list)
    queue_capacity: int = 0
    # -- insider tolerance (all zero/empty without Byzantine machinery) --
    dropped_quarantine: int = 0
    mis_decodes: int = 0
    mis_attributions: int = 0
    byzantine_rx_discarded: int = 0
    forged_acks_rejected: int = 0
    poisoned_rows_attributed: int = 0
    convictions: List[Tuple[int, int, str]] = field(  # (node, round, why)
        repr=False, default_factory=list
    )
    quarantined_carried: List[int] = field(default_factory=list)
    quarantine_final: List[int] = field(default_factory=list)
    quarantine_history: List[dict] = field(repr=False, default_factory=list)
    admission_log: List[dict] = field(repr=False, default_factory=list)
    admission_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Delivered packets per round — the 1302.0264 comparison."""
        return self.delivered / self.rounds if self.rounds else 0.0

    @property
    def blacklisted(self) -> List[int]:
        """Every identity barred by run end (carried + convicted),
        mirroring ``BroadcastReport.blacklisted`` for the oracles."""
        return sorted(
            set(self.quarantine_final)
            | set(self.quarantined_carried)
            | {v for v, _, _ in self.convictions}
        )

    def accounting(self) -> Dict[str, int]:
        return {
            "arrivals": self.arrivals,
            "delivered": self.delivered,
            "dropped_queue": self.dropped_queue,
            "dropped_handoff": self.dropped_handoff,
            "dropped_retry": self.dropped_retry,
            "dropped_quarantine": self.dropped_quarantine,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
        }

    @property
    def accounting_exact(self) -> bool:
        a = self.accounting()
        return a["arrivals"] == (
            a["delivered"] + a["dropped_queue"] + a["dropped_handoff"]
            + a["dropped_retry"] + a["dropped_quarantine"]
            + a["rejected"] + a["in_flight"]
        )

    def latency_percentile(self, q: float) -> float:
        """q-th percentile delivery latency in rounds (nan if none)."""
        if not self.deliveries:
            return float("nan")
        lat = sorted(d - a for _, a, d in self.deliveries)
        idx = min(len(lat) - 1, int(math.ceil(q / 100.0 * len(lat))) - 1)
        return float(lat[max(idx, 0)])

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "throughput": self.throughput,
            "dispatches": self.dispatches,
            "restructures": self.restructures,
            "repairs": self.repairs,
            "handoffs": self.handoffs,
            "max_queue_len": self.max_queue_len,
            "slo_rounds": self.slo_rounds,
            "slo_violations": self.slo_violations,
            "latency_histogram": {
                str(k): v for k, v in sorted(self.latency_histogram.items())
            },
            "latency_p50": self.latency_percentile(50),
            "latency_p99": self.latency_percentile(99),
            **self.accounting(),
            "accounting_exact": self.accounting_exact,
            "mis_decodes": self.mis_decodes,
            "mis_attributions": self.mis_attributions,
            "byzantine_rx_discarded": self.byzantine_rx_discarded,
            "forged_acks_rejected": self.forged_acks_rejected,
            "poisoned_rows_attributed": self.poisoned_rows_attributed,
            "convictions": [
                [v, r, why] for v, r, why in self.convictions
            ],
            "quarantined_carried": list(self.quarantined_carried),
            "quarantine_final": list(self.quarantine_final),
            "admission": dict(self.admission_counters),
        }


def latency_bucket(latency: int) -> int:
    """Power-of-two histogram bucket: b such that 2^b <= latency < 2^(b+1)
    (latency 0 lands in bucket -1)."""
    return latency.bit_length() - 1


class ContinuousBroadcast:
    """Serve an open-ended arrival stream over a (possibly churning)
    network.

    Parameters
    ----------
    network:
        Anything with the ``resolve_round`` interface.  Churn/fault
        layers are discovered through duck typing: ``is_present`` /
        ``edge_active`` (churn), ``is_alive`` (faults), ``advance_to``
        (clocked layers).  A plain :class:`RadioNetwork` degrades to the
        static case.
    process:
        The streaming arrival process; it carries its own RNG.
    batch_policy:
        When to dispatch the queued backlog
        (:class:`~repro.dynamic.policies.BatchPolicy`).  The deadline
        anchor passed as ``queue_first_time`` is the round the backlog
        last became non-empty, **not** the oldest queued arrival — under
        ``drop_oldest`` the oldest arrival advances every eviction,
        which lets :class:`SizeThresholdPolicy`'s ``max_wait`` deadline
        recede forever (the starvation regression pinned in the tests).
    policy / params / seed / depth_bound:
        See :class:`ContinuousPolicy` /
        :class:`~repro.core.config.AlgorithmParameters`.
    quarantined:
        Identities convicted before this run (carried convictions).
        They are barred from arrivals, trees, elections, handoffs, and
        the delivery audience from round 0 — the cross-run persistence
        the ``no_blacklist_escape`` oracle audits.
    forgetful_quarantine:
        Planted-bug switch (the ``amnesiac_blacklist`` ablation): the
        quarantine registry erases a conviction when the convict
        departs, so the identity launders itself by re-joining.  Never
        set it outside tests.

    When ``network`` carries a
    :class:`~repro.resilience.byzantine.ByzantineSet` (discovered via
    duck typing, as the supervisor does), the driver threads the PR-3
    machinery through every dispatch: authenticated collection and
    dissemination with per-batch blacklists, election cross-validation
    of forged claims, and authenticated join admission for churn-time
    insiders (Sybil/replayed joins, forged catch-up claims, re-join
    laundering).  With no insiders and no carried quarantine the run is
    bit-identical to the pre-insider driver.
    """

    def __init__(
        self,
        network,
        process: ArrivalProcess,
        batch_policy: Optional[BatchPolicy] = None,
        policy: Optional[ContinuousPolicy] = None,
        params: Optional[AlgorithmParameters] = None,
        seed: SeedLike = None,
        depth_bound: Optional[int] = None,
        quarantined: Sequence[int] = (),
        forgetful_quarantine: bool = False,
    ):
        self.net = network
        self.process = process
        self.batch_policy = batch_policy or ImmediatePolicy()
        self.policy = policy or ContinuousPolicy()
        if params is None:
            # Stage 3 is sized for *unknown* k; a continuous dispatch
            # knows its batch is at most max_batch, so the default
            # shrinks the initial estimate and skips the MSPG pass
            # (~2.5x fewer rounds per dispatch; a too-small estimate
            # merely costs one doubling phase, never correctness).
            params = AlgorithmParameters().with_overrides(
                collection_estimate_factor=0.25, mspg_enabled=False,
            )
        self.params = params
        self.params.apply_engine(network)
        self.rng = make_rng(seed)
        self.depth_bound = depth_bound or network.diameter
        self.quarantined = frozenset(
            int(v) for v in quarantined if 0 <= int(v) < network.n
        )
        self.forgetful_quarantine = bool(forgetful_quarantine)
        self.byz = getattr(network, "byzantine", None)
        if self.byz is not None:
            self.byz.configure(
                integrity_key=self.params.integrity_key,
                auth_master_key=self.params.auth_master_key,
                authentication=self.params.authentication,
            )
        #: identities excluded from every delivery path: the active
        #: quarantine plus present-but-unadmitted joiners (maintained
        #: by run(); empty on the default path)
        self._barred: Set[int] = set(self.quarantined)

    # -- duck-typed layer queries --------------------------------------

    def _present(self, v: int) -> bool:
        f = getattr(self.net, "is_present", None)
        return True if f is None else bool(f(v))

    def _alive(self, v: int) -> bool:
        f = getattr(self.net, "is_alive", None)
        if f is not None:
            return bool(f(v))
        return self._present(v)

    def _usable(self, v: int) -> bool:
        return (
            v not in self._barred
            and self._present(v)
            and self._alive(v)
        )

    def _edge_usable(self, u: int, v: int) -> bool:
        f = getattr(self.net, "edge_active", None)
        if f is not None:
            return bool(f(u, v))
        return bool(self.net.has_edge(u, v))

    def _sync(self, now: int) -> None:
        f = getattr(self.net, "advance_to", None)
        if f is not None:
            f(now)

    # ------------------------------------------------------------------

    def run(self, horizon: int) -> ContinuousResult:
        """Run for ``horizon`` rounds; no final flush — whatever is
        queued at the end is reported as in-flight."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        # deferred: repro.resilience pulls in the chaos package, which
        # imports this module — a top-level import would be circular
        from repro.resilience.repair import (
            attached_set,
            default_repair_epochs,
            repair_tree,
        )
        from repro.resilience.admission import (
            NEVER_PRESENT,
            AdmissionController,
            JoinRequest,
            QuarantineRegistry,
            insider_join_attack,
        )

        net, policy = self.net, self.policy
        n = net.n
        cap = policy.queue_capacity
        byz = self.byz
        byz_nodes = frozenset(byz.nodes) if byz is not None else frozenset()
        auth = bool(self.params.authentication)

        registry = QuarantineRegistry(
            carried=self.quarantined,
            forgetful=self.forgetful_quarantine,
        )
        admission = AdmissionController(
            registry, master=self.params.auth_master_key
        )
        rejected_admission: Set[int] = set()
        last_departed: Dict[int, int] = {}
        self._barred = set(registry.active)

        queues: Dict[int, List[QueuedPacket]] = {v: [] for v in range(n)}
        backlog = 0
        backlog_since = 0  # round the backlog last became non-empty
        log: List[AuditEvent] = []
        deliveries: List[Tuple[int, int, int]] = []
        histogram: Dict[int, int] = {}
        joiners: Dict[int, JoinerRecord] = {}
        # pid -> nodes known to have decoded it: receivers keep decoded
        # packets, so a retried batch only owes the nodes still missing
        # it — without this, churn that never leaves a full-membership
        # window between outages (the adversarial schedules are built to
        # do exactly that) starves every delivery forever
        known_holders: Dict[int, Set[int]] = {}

        counters = {
            "delivered": 0, "dropped_queue": 0, "dropped_handoff": 0,
            "dropped_retry": 0, "rejected": 0, "handoffs": 0,
            "dispatches": 0, "restructures": 0, "repairs": 0,
            "dropped_quarantine": 0, "mis_decodes": 0,
            "byzantine_rx_discarded": 0, "forged_acks_rejected": 0,
            "poisoned_rows_attributed": 0,
        }
        max_queue_len = 0
        max_cycle = 0
        slo_violations = 0

        now = 0
        absorbed_until = 0
        leader = -1
        parent: Optional[List[int]] = None
        distance: Optional[List[int]] = None
        prev_present = {v for v in range(n) if self._present(v)}
        repair_budget = (
            default_repair_epochs(net, policy.repair_epoch_factor)
        )

        def refresh_barred() -> None:
            """Re-derive the exclusion set from its two sources."""
            self._barred = set(registry.active) | rejected_admission

        def convict(nodes, reason: str) -> None:
            """Quarantine ``nodes``, purging their queued packets.

            Purged packets are charged to ``dropped_quarantine`` with a
            queue-removing ``dropped_quarantine`` audit event (the
            mid-dispatch analogue, ``drop_quarantine``, never touches a
            queue — mirroring dropped_handoff vs drop_handoff).
            """
            nonlocal backlog
            for v in sorted(set(int(u) for u in nodes)):
                if not registry.convict(v, now, reason):
                    continue
                purged = queues[v]
                queues[v] = []
                backlog -= len(purged)
                for item in purged:
                    counters["dropped_quarantine"] += 1
                    note("dropped_quarantine", v, item.packet.pid,
                         item.arrival_round)
            refresh_barred()

        def note(kind: str, node: int, pid: int, arrival: int = -1,
                 at: Optional[int] = None) -> None:
            log.append(AuditEvent(
                round=now if at is None else at, kind=kind, node=node,
                pid=pid, arrival_round=arrival,
            ))

        def enqueue(item: QueuedPacket, bucket: str) -> bool:
            """Admit ``item`` to its owner's queue under the drop
            policy; returns False when the *item itself* was not
            admitted.  ``bucket`` names the drop counter charged on
            overflow ("dropped_queue" for arrivals/requeues,
            "dropped_handoff" for handoffs)."""
            nonlocal backlog, backlog_since, max_queue_len
            q = queues[item.owner]
            # capture before any eviction: a drop_oldest pop transiently
            # empties a capacity-1 backlog, and resetting the deadline
            # anchor on that transient would let SizeThresholdPolicy's
            # max_wait recede one arrival at a time (starvation)
            was_empty = backlog == 0
            if len(q) >= cap:
                if policy.drop_policy == "reject":
                    counters["rejected"] += 1
                    note("reject", item.owner, item.packet.pid,
                         item.arrival_round)
                    return False
                if policy.drop_policy == "drop_newest":
                    counters[bucket] += 1
                    note(bucket, item.owner, item.packet.pid,
                         item.arrival_round)
                    return False
                # drop_oldest: evict the head to admit the newcomer
                evicted = q.pop(0)
                backlog -= 1
                counters[bucket] += 1
                note(bucket, evicted.owner, evicted.packet.pid,
                     evicted.arrival_round)
            if was_empty:
                backlog_since = now
            q.append(item)
            backlog += 1
            max_queue_len = max(max_queue_len, len(q))
            note("enqueue", item.owner, item.packet.pid,
                 item.arrival_round)
            return True

        def absorb(up_to: int) -> None:
            """Draw arrivals for rounds [absorbed_until, up_to)."""
            nonlocal absorbed_until
            for r in range(absorbed_until, up_to):
                pool = [v for v in range(n) if self._usable(v)]
                for pkt in self.process.draw(r, pool):
                    note("arrive", pkt.origin, pkt.pid, r, at=r)
                    enqueue(
                        QueuedPacket(pkt, arrival_round=r,
                                     owner=pkt.origin),
                        "dropped_queue",
                    )
            absorbed_until = max(absorbed_until, up_to)

        def handle_departures() -> None:
            """Hand a departed node's queue to its smallest-id usable
            neighbor with room; overflow is an explicit drop."""
            nonlocal backlog
            present = {v for v in range(n) if self._present(v)}
            for v in sorted(prev_present - present):
                if not queues[v]:
                    continue
                heirs = sorted(
                    int(u) for u in net.neighbors(v)
                    if self._usable(int(u))
                )
                moved = queues[v]
                queues[v] = []
                backlog -= len(moved)
                for item in moved:
                    placed = False
                    for heir in heirs:
                        if len(queues[heir]) < cap:
                            counters["handoffs"] += 1
                            note("handoff", heir, item.packet.pid,
                                 item.arrival_round)
                            enqueue(
                                QueuedPacket(
                                    item.packet, item.arrival_round,
                                    owner=heir,
                                    attempts=item.attempts,
                                ),
                                "dropped_handoff",
                            )
                            placed = True
                            break
                    if not placed:
                        counters["dropped_handoff"] += 1
                        note("drop_handoff", v, item.packet.pid,
                             item.arrival_round)
            for v in sorted(prev_present - present):
                last_departed[v] = now
                rejected_admission.discard(v)
                registry.on_leave(v, now)  # forgetful registries forget
            if prev_present - present:
                refresh_barred()
            for v in sorted(present - prev_present):
                admitted = review_join(v)
                rec = joiners.get(v)
                if rec is None or rec.departed_again or not admitted:
                    joiners[v] = JoinerRecord(
                        node=v, join_round=now, rejected=not admitted,
                    )
            for v in sorted(prev_present - present):
                rec = joiners.get(v)
                if rec is not None and rec.attach_round is None:
                    rec.departed_again = True
            prev_present.clear()
            prev_present.update(present)

        def review_join(v: int) -> bool:
            """Admit or reject one (re-)joining identity.

            Insiders present forged requests per their deterministic
            attack; honest joiners present valid ones.  Provable
            forgeries (bad signature, stale credential, lying catch-up
            claim) convict the physical joiner; a quarantined identity
            is turned away without a fresh conviction (laundering
            blocked).  Without authentication only the quarantine
            check applies — crypto rejections need keys.
            """
            expected = last_departed.get(v, NEVER_PRESENT)
            if auth and byz is not None and v in byz_nodes:
                request = JoinRequest.forged(
                    v, now, insider_join_attack(v),
                    last_departed=expected,
                    master=self.params.auth_master_key,
                )
            else:
                request = JoinRequest.honest(
                    v, now, expected,
                    master=self.params.auth_master_key,
                )
            if not auth:
                # no keys: the gate can only enforce the quarantine
                if registry.is_quarantined(v):
                    rejected_admission.add(v)
                    refresh_barred()
                    return False
                return True
            record = admission.review(request, now, expected)
            if record.admitted:
                rejected_admission.discard(v)
                refresh_barred()
                return True
            rejected_admission.add(v)
            if record.reason in ("sybil", "replay", "catchup_forged"):
                convict([v], f"join admission: {record.reason}")
            refresh_barred()
            return False

        def charge(rounds: int) -> None:
            nonlocal now
            now += rounds
            self._sync(now)

        def structure_valid() -> bool:
            if parent is None or distance is None:
                return False
            if leader < 0 or not self._usable(leader):
                return False
            for v in range(n):
                if v == leader or not self._usable(v):
                    continue
                p = parent[v]
                if distance[v] < 0 or p < 0:
                    return False
                if not self._usable(p):
                    return False
                if not self._edge_usable(v, p):
                    return False
            return True

        def detach_invalid() -> None:
            """Detach nodes whose parent pointer is no longer usable so
            the repair pass re-adopts them."""
            for v in range(n):
                if v == leader:
                    continue
                p = parent[v]
                if p < 0:
                    continue
                if (not self._usable(p)
                        or not self._edge_usable(v, p)
                        or distance[p] < 0):
                    parent[v] = -1
                    distance[v] = -1

        def mark_attached() -> None:
            """Record attach rounds for joiners now on the tree."""
            att = attached_set(parent, distance, leader, self._usable)
            for v, rec in joiners.items():
                if rec.attach_round is None and not rec.departed_again \
                        and v in att:
                    rec.attach_round = now

        def restructure() -> bool:
            """Full rebuild: elect among usable nodes, then BFS.

            Election claims are cross-validated against the certified
            id table exactly as in the supervisor: under authentication
            a forged (out-of-range) claim convicts its signer; without
            it the inflated claim captures the election (the id-
            inflation black hole — the degradation the threat model
            documents).
            """
            nonlocal leader, parent, distance
            counters["restructures"] += 1
            candidates = [v for v in range(n) if self._usable(v)]
            if not candidates:
                leader, parent, distance = -1, None, None
                return False
            election = elect_leader(
                net, candidates, self.rng,
                epochs_per_probe=self.params.bgi_epochs(net),
            )
            charge(election.rounds)
            forged = (
                byz.election_claims(n, self._usable)
                if byz is not None else []
            )
            winner = -1
            if forged and auth:
                convict(
                    (v for v, claimed in forged if claimed != v),
                    "forged leadership claim",
                )
                verified = [
                    c for c in election.claimants if self._usable(c)
                ]
                if len(verified) == 1:
                    winner = verified[0]
            elif forged:
                all_claims = [
                    (c, c) for c in election.claimants if self._usable(c)
                ] + [
                    (v, cid) for v, cid in forged
                    if self._present(v) and self._alive(v)
                ]
                if all_claims:
                    winner = max(all_claims, key=lambda vc: vc[1])[0]
            elif len(election.claimants) == 1 \
                    and self._usable(election.claimants[0]):
                winner = election.claimants[0]
            if winner < 0:
                leader, parent, distance = -1, None, None
                return False
            leader = winner
            if byz is not None:
                byz.notice_leader(leader)
            bfs = build_distributed_bfs(
                net, leader, self.rng,
                depth_bound=self.depth_bound,
                epochs_per_phase=self.params.bfs_epochs(net),
            )
            charge(bfs.rounds)
            parent, distance = list(bfs.parent), list(bfs.distance)
            if self._barred:
                # BFS may have adopted a barred node as an interior
                # parent; detach its honest children and route around
                # it before the structure is used
                detach_invalid()
                att = attached_set(parent, distance, leader, self._usable)
                orphans = [
                    v for v in range(n)
                    if self._usable(v) and v not in att
                ]
                if orphans and self._usable(leader):
                    counters["repairs"] += 1
                    rep = repair_tree(
                        net, parent, distance, leader, self.rng,
                        epochs=repair_budget,
                        round_offset=now,
                        exclude=frozenset(self._barred),
                        mute=frozenset(self._barred),
                    )
                    charge(rep.rounds)
                    parent, distance = rep.parent, rep.distance
            mark_attached()
            return True

        def heal() -> bool:
            """Invariant check → incremental repair → restructure only
            as a last resort.  True when a usable structure stands."""
            nonlocal parent, distance
            if structure_valid():
                mark_attached()
                return True
            if (parent is not None and leader >= 0
                    and self._usable(leader)):
                detach_invalid()
                att = attached_set(
                    parent, distance, leader, self._usable
                )
                orphans = [
                    v for v in range(n)
                    if self._usable(v) and v not in att
                ]
                if orphans:
                    counters["repairs"] += 1
                    rep = repair_tree(
                        net, parent, distance, leader, self.rng,
                        epochs=repair_budget,
                        round_offset=now,
                        exclude=frozenset(self._barred),
                        mute=frozenset(self._barred),
                    )
                    charge(rep.rounds)
                    parent, distance = rep.parent, rep.distance
                if structure_valid():
                    mark_attached()
                    return True
            return restructure()

        def dispatch() -> None:
            """Run one collection + dissemination cycle on the backlog."""
            nonlocal backlog
            counters["dispatches"] += 1

            batch: List[QueuedPacket] = []
            for v in sorted(queues):
                if not self._usable(v):
                    continue
                if v != leader and (parent is None or parent[v] < 0):
                    # usable but detached (e.g. partitioned beyond the
                    # repair pass's reach): collection cannot route from
                    # here — its packets wait for a heal to adopt it
                    continue
                batch.extend(queues[v])
            batch.sort(key=lambda it: (it.arrival_round, it.packet.pid))
            batch = batch[:policy.max_batch]
            if not batch:
                return
            for item in batch:
                queues[item.owner].remove(item)
                backlog -= 1
                note("dispatch", item.owner, item.packet.pid,
                     item.arrival_round)

            def requeue(item: QueuedPacket) -> None:
                if item.owner in self._barred:
                    # owner convicted mid-cycle: its traffic does not
                    # re-enter the queues (drop_quarantine never touches
                    # a queue — the item is in flight here)
                    counters["dropped_quarantine"] += 1
                    note("drop_quarantine", item.owner, item.packet.pid,
                         item.arrival_round)
                    known_holders.pop(item.packet.pid, None)
                    return
                item.attempts += 1
                if item.attempts >= policy.max_attempts:
                    counters["dropped_retry"] += 1
                    note("drop_retry", item.owner, item.packet.pid,
                         item.arrival_round)
                    known_holders.pop(item.packet.pid, None)
                    return
                note("requeue", item.owner, item.packet.pid,
                     item.arrival_round)
                enqueue(item, "dropped_queue")

            # Re-home handed-off packets: the stages route from the
            # packet's origin field, which must be its current owner.
            to_send: List[Tuple[QueuedPacket, Packet]] = []
            for item in batch:
                pkt = item.packet
                if pkt.origin != item.owner:
                    pkt = replace(pkt, origin=item.owner)
                to_send.append((item, pkt))

            root_items = [
                (it, pkt) for it, pkt in to_send if pkt.origin == leader
            ]
            field_items = [
                (it, pkt) for it, pkt in to_send if pkt.origin != leader
            ]
            collected: List[Tuple[QueuedPacket, Packet]] = list(root_items)
            if field_items:
                collection = run_collection_stage(
                    net, parent, distance, leader,
                    [pkt for _, pkt in field_items],
                    self.params, self.rng,
                    depth_bound=self.depth_bound,
                    blacklist=frozenset(self._barred),
                )
                charge(collection.rounds)
                counters["forged_acks_rejected"] += (
                    collection.forged_acks_rejected
                )
                counters["byzantine_rx_discarded"] += (
                    collection.byzantine_rx_discarded
                )
                if collection.flagged:
                    convict(collection.flagged, "collection audit")
                got = set(collection.collected_order)
                for it, pkt in field_items:
                    if pkt.pid in got and it.owner not in self._barred:
                        collected.append((it, pkt))
                    else:
                        requeue(it)
            if leader < 0 or not self._usable(leader):
                # leader vanished mid-cycle: nothing can disseminate;
                # everything gathered goes back to the queues
                for it, _ in collected:
                    requeue(it)
                return
            if not collected:
                return

            ordered = [pkt for _, pkt in collected]
            safe_distance = [d if d >= 0 else 1 for d in distance]
            safe_distance[leader] = 0
            dissemination = run_dissemination_stage(
                net, safe_distance, leader, ordered,
                self.params, self.rng,
                blacklist=frozenset(self._barred),
            )
            charge(dissemination.rounds)
            counters["mis_decodes"] += dissemination.mis_decodes
            counters["byzantine_rx_discarded"] += (
                dissemination.byzantine_rx_discarded
            )
            counters["poisoned_rows_attributed"] += (
                dissemination.poisoned_rows_attributed
            )
            if dissemination.flagged_senders:
                convict(
                    dissemination.flagged_senders,
                    "poisoned row attributed",
                )

            width = dissemination.group_width
            audience = [v for v in range(n) if self._usable(v)]
            for i, (item, pkt) in enumerate(collected):
                if item.owner in self._barred:
                    # convicted during this very cycle (e.g. its row
                    # poison was attributed): its traffic dies with it
                    counters["dropped_quarantine"] += 1
                    note("drop_quarantine", item.owner, item.packet.pid,
                         item.arrival_round)
                    continue
                j = i // width
                holders = {
                    int(v) for v in np.nonzero(
                        dissemination.has_group[:, j]
                    )[0]
                }
                holders.add(pkt.origin)
                holders.add(leader)
                # receivers keep what they decode: union this cycle's
                # holders with every earlier attempt's, so a retry only
                # owes the nodes still missing the packet
                holders |= known_holders.get(pkt.pid, set())
                known_holders[pkt.pid] = holders
                if all(v in holders for v in audience):
                    known_holders.pop(pkt.pid, None)
                    counters["delivered"] += 1
                    latency = now - item.arrival_round
                    deliveries.append(
                        (pkt.pid, item.arrival_round, now)
                    )
                    b = latency_bucket(latency)
                    histogram[b] = histogram.get(b, 0) + 1
                    note("deliver", pkt.origin, pkt.pid,
                         item.arrival_round)
                else:
                    requeue(item)

        # ---- main loop -------------------------------------------------
        self._sync(0)
        heal()
        last_check = now
        while now < horizon:
            self._sync(now)
            absorb(min(now + 1, horizon))
            handle_departures()
            if now - last_check >= policy.check_interval:
                heal()
                last_check = now
            if backlog > 0:
                due = self.batch_policy.dispatch_time(
                    backlog_since, backlog, now
                )
                if due <= now:
                    cycle_start = now
                    if heal():
                        dispatch()
                        last_check = now
                    max_cycle = max(max_cycle, now - cycle_start)
                    if now == cycle_start:
                        now += 1  # structure-less: don't spin in place
                    continue
            now += 1

        self._sync(now)
        # arrivals in rounds the final dispatch skipped past are still
        # pre-horizon traffic: draw them so the books close exactly
        absorb(horizon)
        handle_departures()
        in_flight = sum(len(q) for q in queues.values())
        slo_violations = sum(
            1 for _, a, d in deliveries if d - a > policy.slo_rounds
        )
        repair_rounds_cap = repair_budget * decay_slots(net.max_degree)
        runtime_convicted = {v for v, _, _ in registry.convictions}
        mis_attributions = len(
            runtime_convicted - byz_nodes - registry.carried
        )

        return ContinuousResult(
            rounds=now,
            arrivals=self.process.total_emitted,
            delivered=counters["delivered"],
            dropped_queue=counters["dropped_queue"],
            dropped_handoff=counters["dropped_handoff"],
            dropped_retry=counters["dropped_retry"],
            rejected=counters["rejected"],
            in_flight=in_flight,
            dispatches=counters["dispatches"],
            restructures=counters["restructures"],
            repairs=counters["repairs"],
            handoffs=counters["handoffs"],
            max_queue_len=max_queue_len,
            max_cycle_rounds=max_cycle,
            repair_round_budget=repair_rounds_cap,
            slo_rounds=policy.slo_rounds,
            slo_violations=slo_violations,
            latency_histogram=histogram,
            deliveries=deliveries,
            joiners=sorted(joiners.values(), key=lambda r: r.node),
            audit_log=log,
            queue_capacity=cap,
            dropped_quarantine=counters["dropped_quarantine"],
            mis_decodes=counters["mis_decodes"],
            mis_attributions=mis_attributions,
            byzantine_rx_discarded=counters["byzantine_rx_discarded"],
            forged_acks_rejected=counters["forged_acks_rejected"],
            poisoned_rows_attributed=counters["poisoned_rows_attributed"],
            convictions=list(registry.convictions),
            quarantined_carried=sorted(registry.carried),
            quarantine_final=sorted(registry.active),
            quarantine_history=registry.history_json(),
            admission_log=admission.log_json(),
            admission_counters=dict(admission.counters),
        )
