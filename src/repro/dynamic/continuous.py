"""Open-ended continuous broadcast with SLOs, backpressure, and churn.

:class:`ContinuousBroadcast` is the production-shaped driver the ROADMAP
asks for: instead of one-shot k-broadcast it serves an **open-ended
arrival stream** (a streaming :class:`~repro.dynamic.arrivals
.ArrivalProcess`) over a network whose topology may churn underneath it
(a :class:`~repro.dynamic.churn.ChurnNetwork`, optionally wrapped in a
:class:`~repro.resilience.network.DynamicFaultNetwork` so crashes and
jamming compose).  The paper's four-stage machinery is reused as-is —
the driver owns *when* to run which stage, the paper owns *how*:

- **bounded queues with explicit backpressure** — every origin holds at
  most ``queue_capacity`` packets; overflow is resolved by the
  configured drop policy (``drop_newest``, ``drop_oldest``, or
  ``reject``, i.e. backpressure pushed to the producer);
- **structure reuse with graceful degradation** — leader election and
  BFS run once, then every dispatch reuses the tree; topology churn is
  detected through BFS-tree *invariant* violations (parent departed,
  tree edge severed, joiner unlabeled) and handled by the PR-1
  Decay-based :func:`~repro.resilience.repair.repair_tree` pass —
  a full re-election happens only when the leader itself is gone or
  repair cannot reach live nodes;
- **per-packet latency SLOs** — every delivery is timestamped and
  compared against ``slo_rounds``; the result carries an exact
  power-of-two latency histogram plus the violation count;
- **state handoff** — a departing node's queued packets are handed to
  its smallest-id live neighbor with queue room (each handoff re-homes
  the packet; overflow on handoff is an explicit drop bucket);
- **exact accounting** — ``arrivals == delivered + dropped(*) +
  rejected + in_flight`` holds at every exit, and an append-only audit
  log of every queue transition lets the chaos oracles *recompute* the
  books instead of trusting them.

Determinism: one seeded RNG drives the protocol stages and nothing
else; the arrival process carries its own stream.  Same seeds, same
schedule ⇒ byte-identical run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.packets import Packet
from repro.core.collection import run_collection_stage
from repro.core.config import AlgorithmParameters
from repro.core.dissemination import run_dissemination_stage
from repro.dynamic.arrivals import ArrivalProcess
from repro.dynamic.policies import BatchPolicy, ImmediatePolicy
from repro.primitives.bfs import build_distributed_bfs
from repro.primitives.decay import decay_slots
from repro.primitives.leader_election import elect_leader
from repro.radio.rng import SeedLike, make_rng

#: Queue-overflow resolutions.
DROP_POLICIES = ("drop_newest", "drop_oldest", "reject")


@dataclass(frozen=True)
class ContinuousPolicy:
    """Knobs for the continuous driver.

    Attributes
    ----------
    queue_capacity:
        Per-origin queue bound (the queue-bound oracle audits it).
    drop_policy:
        Overflow resolution: ``drop_newest`` discards the arriving
        packet, ``drop_oldest`` evicts the head to admit it, ``reject``
        refuses admission and charges the producer (backpressure).
    slo_rounds:
        Per-packet latency SLO (arrival → full delivery, in rounds).
    max_batch:
        Cap on packets handed to one dispatch (keeps a single stage
        execution's round cost bounded under bursts).
    max_attempts:
        Delivery attempts per packet before it is dropped as
        undeliverable (collection/dissemination failures re-queue).
    check_interval:
        Idle-time cadence (rounds) of the BFS-invariant check, so
        joiners attach and severed trees heal even with no traffic.
    repair_epoch_factor:
        Decay-epoch budget factor for one repair pass (as in
        :class:`~repro.resilience.supervisor.SupervisionPolicy`).
    """

    queue_capacity: int = 16
    drop_policy: str = "drop_newest"
    slo_rounds: int = 2048
    max_batch: int = 32
    max_attempts: int = 3
    check_interval: int = 64
    repair_epoch_factor: float = 2.0

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}"
            )
        if self.slo_rounds < 1:
            raise ValueError("slo_rounds must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")

    def to_json(self) -> dict:
        return {
            "queue_capacity": self.queue_capacity,
            "drop_policy": self.drop_policy,
            "slo_rounds": self.slo_rounds,
            "max_batch": self.max_batch,
            "max_attempts": self.max_attempts,
            "check_interval": self.check_interval,
            "repair_epoch_factor": self.repair_epoch_factor,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ContinuousPolicy":
        return cls(**data)


@dataclass
class QueuedPacket:
    """One packet waiting at (or handed to) an origin's queue."""

    packet: Packet
    arrival_round: int
    owner: int
    attempts: int = 0


@dataclass(frozen=True)
class AuditEvent:
    """One queue/delivery transition for oracle recomputation."""

    round: int
    kind: str  # arrive/enqueue/reject/drop_queue/drop_handoff/
    #           drop_retry/handoff/dispatch/deliver/requeue
    node: int
    pid: int
    arrival_round: int = -1


@dataclass
class JoinerRecord:
    """A joiner's attach progress, for the catch-up oracle."""

    node: int
    join_round: int
    attach_round: Optional[int] = None
    departed_again: bool = False


@dataclass
class ContinuousResult:
    """Outcome of one open-ended run.

    The accounting identity (checked by :meth:`accounting`) is::

        arrivals == delivered + dropped_queue + dropped_handoff
                    + dropped_retry + rejected + in_flight
    """

    rounds: int
    arrivals: int
    delivered: int
    dropped_queue: int
    dropped_handoff: int
    dropped_retry: int
    rejected: int
    in_flight: int
    dispatches: int
    restructures: int
    repairs: int
    handoffs: int
    max_queue_len: int
    max_cycle_rounds: int
    repair_round_budget: int
    slo_rounds: int
    slo_violations: int
    latency_histogram: Dict[int, int] = field(default_factory=dict)
    deliveries: List[Tuple[int, int, int]] = field(  # (pid, arrival, deliver)
        repr=False, default_factory=list
    )
    joiners: List[JoinerRecord] = field(repr=False, default_factory=list)
    audit_log: List[AuditEvent] = field(repr=False, default_factory=list)
    queue_capacity: int = 0

    @property
    def throughput(self) -> float:
        """Delivered packets per round — the 1302.0264 comparison."""
        return self.delivered / self.rounds if self.rounds else 0.0

    def accounting(self) -> Dict[str, int]:
        return {
            "arrivals": self.arrivals,
            "delivered": self.delivered,
            "dropped_queue": self.dropped_queue,
            "dropped_handoff": self.dropped_handoff,
            "dropped_retry": self.dropped_retry,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
        }

    @property
    def accounting_exact(self) -> bool:
        a = self.accounting()
        return a["arrivals"] == (
            a["delivered"] + a["dropped_queue"] + a["dropped_handoff"]
            + a["dropped_retry"] + a["rejected"] + a["in_flight"]
        )

    def latency_percentile(self, q: float) -> float:
        """q-th percentile delivery latency in rounds (nan if none)."""
        if not self.deliveries:
            return float("nan")
        lat = sorted(d - a for _, a, d in self.deliveries)
        idx = min(len(lat) - 1, int(math.ceil(q / 100.0 * len(lat))) - 1)
        return float(lat[max(idx, 0)])

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "throughput": self.throughput,
            "dispatches": self.dispatches,
            "restructures": self.restructures,
            "repairs": self.repairs,
            "handoffs": self.handoffs,
            "max_queue_len": self.max_queue_len,
            "slo_rounds": self.slo_rounds,
            "slo_violations": self.slo_violations,
            "latency_histogram": {
                str(k): v for k, v in sorted(self.latency_histogram.items())
            },
            "latency_p50": self.latency_percentile(50),
            "latency_p99": self.latency_percentile(99),
            **self.accounting(),
            "accounting_exact": self.accounting_exact,
        }


def latency_bucket(latency: int) -> int:
    """Power-of-two histogram bucket: b such that 2^b <= latency < 2^(b+1)
    (latency 0 lands in bucket -1)."""
    return latency.bit_length() - 1


class ContinuousBroadcast:
    """Serve an open-ended arrival stream over a (possibly churning)
    network.

    Parameters
    ----------
    network:
        Anything with the ``resolve_round`` interface.  Churn/fault
        layers are discovered through duck typing: ``is_present`` /
        ``edge_active`` (churn), ``is_alive`` (faults), ``advance_to``
        (clocked layers).  A plain :class:`RadioNetwork` degrades to the
        static case.
    process:
        The streaming arrival process; it carries its own RNG.
    batch_policy:
        When to dispatch the queued backlog
        (:class:`~repro.dynamic.policies.BatchPolicy`).  The deadline
        anchor passed as ``queue_first_time`` is the round the backlog
        last became non-empty, **not** the oldest queued arrival — under
        ``drop_oldest`` the oldest arrival advances every eviction,
        which lets :class:`SizeThresholdPolicy`'s ``max_wait`` deadline
        recede forever (the starvation regression pinned in the tests).
    policy / params / seed / depth_bound:
        See :class:`ContinuousPolicy` /
        :class:`~repro.core.config.AlgorithmParameters`.
    """

    def __init__(
        self,
        network,
        process: ArrivalProcess,
        batch_policy: Optional[BatchPolicy] = None,
        policy: Optional[ContinuousPolicy] = None,
        params: Optional[AlgorithmParameters] = None,
        seed: SeedLike = None,
        depth_bound: Optional[int] = None,
    ):
        self.net = network
        self.process = process
        self.batch_policy = batch_policy or ImmediatePolicy()
        self.policy = policy or ContinuousPolicy()
        if params is None:
            # Stage 3 is sized for *unknown* k; a continuous dispatch
            # knows its batch is at most max_batch, so the default
            # shrinks the initial estimate and skips the MSPG pass
            # (~2.5x fewer rounds per dispatch; a too-small estimate
            # merely costs one doubling phase, never correctness).
            params = AlgorithmParameters().with_overrides(
                collection_estimate_factor=0.25, mspg_enabled=False,
            )
        self.params = params
        self.params.apply_engine(network)
        self.rng = make_rng(seed)
        self.depth_bound = depth_bound or network.diameter

    # -- duck-typed layer queries --------------------------------------

    def _present(self, v: int) -> bool:
        f = getattr(self.net, "is_present", None)
        return True if f is None else bool(f(v))

    def _alive(self, v: int) -> bool:
        f = getattr(self.net, "is_alive", None)
        if f is not None:
            return bool(f(v))
        return self._present(v)

    def _usable(self, v: int) -> bool:
        return self._present(v) and self._alive(v)

    def _edge_usable(self, u: int, v: int) -> bool:
        f = getattr(self.net, "edge_active", None)
        if f is not None:
            return bool(f(u, v))
        return bool(self.net.has_edge(u, v))

    def _sync(self, now: int) -> None:
        f = getattr(self.net, "advance_to", None)
        if f is not None:
            f(now)

    # ------------------------------------------------------------------

    def run(self, horizon: int) -> ContinuousResult:
        """Run for ``horizon`` rounds; no final flush — whatever is
        queued at the end is reported as in-flight."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        # deferred: repro.resilience pulls in the chaos package, which
        # imports this module — a top-level import would be circular
        from repro.resilience.repair import (
            attached_set,
            default_repair_epochs,
            repair_tree,
        )

        net, policy = self.net, self.policy
        n = net.n
        cap = policy.queue_capacity

        queues: Dict[int, List[QueuedPacket]] = {v: [] for v in range(n)}
        backlog = 0
        backlog_since = 0  # round the backlog last became non-empty
        log: List[AuditEvent] = []
        deliveries: List[Tuple[int, int, int]] = []
        histogram: Dict[int, int] = {}
        joiners: Dict[int, JoinerRecord] = {}

        counters = {
            "delivered": 0, "dropped_queue": 0, "dropped_handoff": 0,
            "dropped_retry": 0, "rejected": 0, "handoffs": 0,
            "dispatches": 0, "restructures": 0, "repairs": 0,
        }
        max_queue_len = 0
        max_cycle = 0
        slo_violations = 0

        now = 0
        absorbed_until = 0
        leader = -1
        parent: Optional[List[int]] = None
        distance: Optional[List[int]] = None
        prev_present = {v for v in range(n) if self._present(v)}
        repair_budget = (
            default_repair_epochs(net, policy.repair_epoch_factor)
        )

        def note(kind: str, node: int, pid: int, arrival: int = -1,
                 at: Optional[int] = None) -> None:
            log.append(AuditEvent(
                round=now if at is None else at, kind=kind, node=node,
                pid=pid, arrival_round=arrival,
            ))

        def enqueue(item: QueuedPacket, bucket: str) -> bool:
            """Admit ``item`` to its owner's queue under the drop
            policy; returns False when the *item itself* was not
            admitted.  ``bucket`` names the drop counter charged on
            overflow ("dropped_queue" for arrivals/requeues,
            "dropped_handoff" for handoffs)."""
            nonlocal backlog, backlog_since, max_queue_len
            q = queues[item.owner]
            # capture before any eviction: a drop_oldest pop transiently
            # empties a capacity-1 backlog, and resetting the deadline
            # anchor on that transient would let SizeThresholdPolicy's
            # max_wait recede one arrival at a time (starvation)
            was_empty = backlog == 0
            if len(q) >= cap:
                if policy.drop_policy == "reject":
                    counters["rejected"] += 1
                    note("reject", item.owner, item.packet.pid,
                         item.arrival_round)
                    return False
                if policy.drop_policy == "drop_newest":
                    counters[bucket] += 1
                    note(bucket, item.owner, item.packet.pid,
                         item.arrival_round)
                    return False
                # drop_oldest: evict the head to admit the newcomer
                evicted = q.pop(0)
                backlog -= 1
                counters[bucket] += 1
                note(bucket, evicted.owner, evicted.packet.pid,
                     evicted.arrival_round)
            if was_empty:
                backlog_since = now
            q.append(item)
            backlog += 1
            max_queue_len = max(max_queue_len, len(q))
            note("enqueue", item.owner, item.packet.pid,
                 item.arrival_round)
            return True

        def absorb(up_to: int) -> None:
            """Draw arrivals for rounds [absorbed_until, up_to)."""
            nonlocal absorbed_until
            for r in range(absorbed_until, up_to):
                pool = [v for v in range(n) if self._usable(v)]
                for pkt in self.process.draw(r, pool):
                    note("arrive", pkt.origin, pkt.pid, r, at=r)
                    enqueue(
                        QueuedPacket(pkt, arrival_round=r,
                                     owner=pkt.origin),
                        "dropped_queue",
                    )
            absorbed_until = max(absorbed_until, up_to)

        def handle_departures() -> None:
            """Hand a departed node's queue to its smallest-id usable
            neighbor with room; overflow is an explicit drop."""
            nonlocal backlog
            present = {v for v in range(n) if self._present(v)}
            for v in sorted(prev_present - present):
                if not queues[v]:
                    continue
                heirs = sorted(
                    int(u) for u in net.neighbors(v)
                    if self._usable(int(u))
                )
                moved = queues[v]
                queues[v] = []
                backlog -= len(moved)
                for item in moved:
                    placed = False
                    for heir in heirs:
                        if len(queues[heir]) < cap:
                            counters["handoffs"] += 1
                            note("handoff", heir, item.packet.pid,
                                 item.arrival_round)
                            enqueue(
                                QueuedPacket(
                                    item.packet, item.arrival_round,
                                    owner=heir,
                                    attempts=item.attempts,
                                ),
                                "dropped_handoff",
                            )
                            placed = True
                            break
                    if not placed:
                        counters["dropped_handoff"] += 1
                        note("drop_handoff", v, item.packet.pid,
                             item.arrival_round)
            for v in sorted(present - prev_present):
                rec = joiners.get(v)
                if rec is None or rec.departed_again:
                    joiners[v] = JoinerRecord(node=v, join_round=now)
            for v in sorted(prev_present - present):
                rec = joiners.get(v)
                if rec is not None and rec.attach_round is None:
                    rec.departed_again = True
            prev_present.clear()
            prev_present.update(present)

        def charge(rounds: int) -> None:
            nonlocal now
            now += rounds
            self._sync(now)

        def structure_valid() -> bool:
            if parent is None or distance is None:
                return False
            if leader < 0 or not self._usable(leader):
                return False
            for v in range(n):
                if v == leader or not self._usable(v):
                    continue
                p = parent[v]
                if distance[v] < 0 or p < 0:
                    return False
                if not self._usable(p):
                    return False
                if not self._edge_usable(v, p):
                    return False
            return True

        def detach_invalid() -> None:
            """Detach nodes whose parent pointer is no longer usable so
            the repair pass re-adopts them."""
            for v in range(n):
                if v == leader:
                    continue
                p = parent[v]
                if p < 0:
                    continue
                if (not self._usable(p)
                        or not self._edge_usable(v, p)
                        or distance[p] < 0):
                    parent[v] = -1
                    distance[v] = -1

        def mark_attached() -> None:
            """Record attach rounds for joiners now on the tree."""
            att = attached_set(parent, distance, leader, self._usable)
            for v, rec in joiners.items():
                if rec.attach_round is None and not rec.departed_again \
                        and v in att:
                    rec.attach_round = now

        def restructure() -> bool:
            """Full rebuild: elect among usable nodes, then BFS."""
            nonlocal leader, parent, distance
            counters["restructures"] += 1
            candidates = [v for v in range(n) if self._usable(v)]
            if not candidates:
                leader, parent, distance = -1, None, None
                return False
            election = elect_leader(
                net, candidates, self.rng,
                epochs_per_probe=self.params.bgi_epochs(net),
            )
            charge(election.rounds)
            if len(election.claimants) != 1 \
                    or not self._usable(election.claimants[0]):
                leader, parent, distance = -1, None, None
                return False
            leader = election.claimants[0]
            bfs = build_distributed_bfs(
                net, leader, self.rng,
                depth_bound=self.depth_bound,
                epochs_per_phase=self.params.bfs_epochs(net),
            )
            charge(bfs.rounds)
            parent, distance = list(bfs.parent), list(bfs.distance)
            mark_attached()
            return True

        def heal() -> bool:
            """Invariant check → incremental repair → restructure only
            as a last resort.  True when a usable structure stands."""
            nonlocal parent, distance
            if structure_valid():
                mark_attached()
                return True
            if (parent is not None and leader >= 0
                    and self._usable(leader)):
                detach_invalid()
                att = attached_set(
                    parent, distance, leader, self._usable
                )
                orphans = [
                    v for v in range(n)
                    if self._usable(v) and v not in att
                ]
                if orphans:
                    counters["repairs"] += 1
                    rep = repair_tree(
                        net, parent, distance, leader, self.rng,
                        epochs=repair_budget,
                        round_offset=now,
                    )
                    charge(rep.rounds)
                    parent, distance = rep.parent, rep.distance
                if structure_valid():
                    mark_attached()
                    return True
            return restructure()

        def dispatch() -> None:
            """Run one collection + dissemination cycle on the backlog."""
            nonlocal backlog
            counters["dispatches"] += 1

            batch: List[QueuedPacket] = []
            for v in sorted(queues):
                if not self._usable(v):
                    continue
                if v != leader and (parent is None or parent[v] < 0):
                    # usable but detached (e.g. partitioned beyond the
                    # repair pass's reach): collection cannot route from
                    # here — its packets wait for a heal to adopt it
                    continue
                batch.extend(queues[v])
            batch.sort(key=lambda it: (it.arrival_round, it.packet.pid))
            batch = batch[:policy.max_batch]
            if not batch:
                return
            for item in batch:
                queues[item.owner].remove(item)
                backlog -= 1
                note("dispatch", item.owner, item.packet.pid,
                     item.arrival_round)

            def requeue(item: QueuedPacket) -> None:
                item.attempts += 1
                if item.attempts >= policy.max_attempts:
                    counters["dropped_retry"] += 1
                    note("drop_retry", item.owner, item.packet.pid,
                         item.arrival_round)
                    return
                note("requeue", item.owner, item.packet.pid,
                     item.arrival_round)
                enqueue(item, "dropped_queue")

            # Re-home handed-off packets: the stages route from the
            # packet's origin field, which must be its current owner.
            to_send: List[Tuple[QueuedPacket, Packet]] = []
            for item in batch:
                pkt = item.packet
                if pkt.origin != item.owner:
                    pkt = replace(pkt, origin=item.owner)
                to_send.append((item, pkt))

            root_items = [
                (it, pkt) for it, pkt in to_send if pkt.origin == leader
            ]
            field_items = [
                (it, pkt) for it, pkt in to_send if pkt.origin != leader
            ]
            collected: List[Tuple[QueuedPacket, Packet]] = list(root_items)
            if field_items:
                collection = run_collection_stage(
                    net, parent, distance, leader,
                    [pkt for _, pkt in field_items],
                    self.params, self.rng,
                    depth_bound=self.depth_bound,
                )
                charge(collection.rounds)
                got = set(collection.collected_order)
                for it, pkt in field_items:
                    if pkt.pid in got:
                        collected.append((it, pkt))
                    else:
                        requeue(it)
            if leader < 0 or not self._usable(leader):
                # leader vanished mid-cycle: nothing can disseminate;
                # everything gathered goes back to the queues
                for it, _ in collected:
                    requeue(it)
                return
            if not collected:
                return

            ordered = [pkt for _, pkt in collected]
            safe_distance = [d if d >= 0 else 1 for d in distance]
            safe_distance[leader] = 0
            dissemination = run_dissemination_stage(
                net, safe_distance, leader, ordered,
                self.params, self.rng,
            )
            charge(dissemination.rounds)

            width = dissemination.group_width
            audience = [v for v in range(n) if self._usable(v)]
            for i, (item, pkt) in enumerate(collected):
                j = i // width
                holders = {
                    int(v) for v in np.nonzero(
                        dissemination.has_group[:, j]
                    )[0]
                }
                holders.add(pkt.origin)
                holders.add(leader)
                if all(v in holders for v in audience):
                    counters["delivered"] += 1
                    latency = now - item.arrival_round
                    deliveries.append(
                        (pkt.pid, item.arrival_round, now)
                    )
                    b = latency_bucket(latency)
                    histogram[b] = histogram.get(b, 0) + 1
                    note("deliver", pkt.origin, pkt.pid,
                         item.arrival_round)
                else:
                    requeue(item)

        # ---- main loop -------------------------------------------------
        self._sync(0)
        heal()
        last_check = now
        while now < horizon:
            self._sync(now)
            absorb(min(now + 1, horizon))
            handle_departures()
            if now - last_check >= policy.check_interval:
                heal()
                last_check = now
            if backlog > 0:
                due = self.batch_policy.dispatch_time(
                    backlog_since, backlog, now
                )
                if due <= now:
                    cycle_start = now
                    if heal():
                        dispatch()
                        last_check = now
                    max_cycle = max(max_cycle, now - cycle_start)
                    if now == cycle_start:
                        now += 1  # structure-less: don't spin in place
                    continue
            now += 1

        self._sync(now)
        # arrivals in rounds the final dispatch skipped past are still
        # pre-horizon traffic: draw them so the books close exactly
        absorb(horizon)
        handle_departures()
        in_flight = sum(len(q) for q in queues.values())
        slo_violations = sum(
            1 for _, a, d in deliveries if d - a > policy.slo_rounds
        )
        repair_rounds_cap = repair_budget * decay_slots(net.max_degree)

        return ContinuousResult(
            rounds=now,
            arrivals=self.process.total_emitted,
            delivered=counters["delivered"],
            dropped_queue=counters["dropped_queue"],
            dropped_handoff=counters["dropped_handoff"],
            dropped_retry=counters["dropped_retry"],
            rejected=counters["rejected"],
            in_flight=in_flight,
            dispatches=counters["dispatches"],
            restructures=counters["restructures"],
            repairs=counters["repairs"],
            handoffs=counters["handoffs"],
            max_queue_len=max_queue_len,
            max_cycle_rounds=max_cycle,
            repair_round_budget=repair_rounds_cap,
            slo_rounds=policy.slo_rounds,
            slo_violations=slo_violations,
            latency_histogram=histogram,
            deliveries=deliveries,
            joiners=sorted(joiners.values(), key=lambda r: r.node),
            audit_log=log,
            queue_capacity=cap,
        )
