"""Topology churn: node join/leave, mobility edge flips, partitions.

The resilience stack so far (crash/jam/corrupt/Byzantine) perturbs the
*packet* layer of a fixed graph.  This module makes the graph itself a
function of time, the regime of Ahmadi–Kuhn (1610.02931):

- a :class:`ChurnSchedule` is a declarative, round-indexed timeline of
  **membership** changes (``join``/``leave``) and **edge** changes
  (``edge_down``/``edge_up`` mobility flips, batched
  ``partition``/``heal`` events);
- a :class:`ChurnNetwork` applies that timeline through the standard
  ``resolve_round`` interface, *beneath*
  :class:`repro.resilience.network.DynamicFaultNetwork` — so topology
  churn composes with every existing fault layer (a node can crash
  while its neighborhood is flapping, a jam window can cover a
  partition, an insider can depart mid-lie).

Model
-----
All nodes that ever exist belong to the **footprint** graph (the union
of every edge that is ever active).  A node is either *present* or
*absent*; an edge is either *active* or *severed*.  Unlike a downed
link (which still carries interference — the signal is in the air, the
link is merely undecodable), an absent node or severed edge is
physically gone: no signal, no interference.  ``ChurnNetwork``
therefore re-resolves the reception rule over the *current* graph
instead of delegating to the footprint's resolver.

Like :class:`FaultSchedule`, a churn timeline is fully concrete and
seeded sampling is deterministic: the same schedule replayed against
the same transmissions yields bit-identical receptions (the layer
carries no RNG at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng

#: Event kinds understood by ChurnNetwork.
CHURN_KINDS = ("join", "leave", "edge_down", "edge_up", "partition", "heal")

#: Worst-case strategies understood by AdversarialChurnSpec.
ADVERSARIAL_STRATEGIES = (
    "leader_target", "cut_edges", "partition_sync", "combined",
)


def _norm_edge(edge: Tuple[int, int]) -> Tuple[int, int]:
    u, v = int(edge[0]), int(edge[1])
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled topology change.

    ``round`` is the absolute round at which the change takes effect
    (before that round is resolved, matching
    :class:`~repro.resilience.schedule.FaultEvent` semantics).  Churn is
    environment-driven, so timing is always concrete — there is no
    symbolic ``after_stage`` variant.
    """

    kind: str
    round: int
    node: int = -1
    edge: Optional[Tuple[int, int]] = None
    edges: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.kind not in CHURN_KINDS:
            raise ValueError(f"unknown churn kind {self.kind!r}")
        if self.round < 0:
            raise ValueError("churn event round must be non-negative")
        if self.kind in ("join", "leave"):
            if self.node < 0:
                raise ValueError(f"{self.kind} event needs a node id")
        elif self.kind in ("edge_down", "edge_up"):
            if self.edge is None:
                raise ValueError(f"{self.kind} event needs an edge")
            _check_edge(self.kind, self.edge)
        else:  # partition / heal
            if not self.edges:
                raise ValueError(f"{self.kind} event needs a cut-set")
            for e in self.edges:
                _check_edge(self.kind, e)

    def cut_edges(self) -> Tuple[Tuple[int, int], ...]:
        """The edges this event severs or restores (normalized)."""
        if self.edge is not None:
            return (_norm_edge(self.edge),)
        return tuple(_norm_edge(e) for e in self.edges)


def _check_edge(kind: str, edge: Tuple[int, int]) -> None:
    u, v = edge
    if u == v:
        raise ValueError(f"{kind} event edge must join distinct nodes")
    if u < 0 or v < 0:
        raise ValueError(f"{kind} event edge needs non-negative node ids")


@dataclass
class ChurnSchedule:
    """An ordered timeline of membership and edge changes.

    ``initially_absent`` lists footprint nodes that have not yet joined
    when the run starts (future joiners).  Builder methods return
    ``self`` so schedules read declaratively::

        churn = (ChurnSchedule(initially_absent=[9])
                 .join(9, at_round=200)
                 .leave(4, at_round=350)
                 .edge_down((2, 3), at_round=100)
                 .edge_up((2, 3), at_round=180)
                 .partition([(0, 1), (0, 4)], at_round=400)
                 .heal([(0, 1), (0, 4)], at_round=500))
    """

    events: List[ChurnEvent] = field(default_factory=list)
    initially_absent: FrozenSet[int] = frozenset()

    def __post_init__(self):
        self.initially_absent = frozenset(
            int(v) for v in self.initially_absent
        )
        if any(v < 0 for v in self.initially_absent):
            raise ValueError("initially_absent node ids must be >= 0")

    # -- builders ------------------------------------------------------

    def join(self, node: int, at_round: int) -> "ChurnSchedule":
        self.events.append(
            ChurnEvent("join", round=int(at_round), node=int(node))
        )
        return self

    def leave(self, node: int, at_round: int) -> "ChurnSchedule":
        self.events.append(
            ChurnEvent("leave", round=int(at_round), node=int(node))
        )
        return self

    def edge_down(self, edge: Tuple[int, int], at_round: int) -> "ChurnSchedule":
        self.events.append(
            ChurnEvent("edge_down", round=int(at_round), edge=_norm_edge(edge))
        )
        return self

    def edge_up(self, edge: Tuple[int, int], at_round: int) -> "ChurnSchedule":
        self.events.append(
            ChurnEvent("edge_up", round=int(at_round), edge=_norm_edge(edge))
        )
        return self

    def partition(
        self, edges: Iterable[Tuple[int, int]], at_round: int
    ) -> "ChurnSchedule":
        self.events.append(ChurnEvent(
            "partition", round=int(at_round),
            edges=tuple(_norm_edge(e) for e in edges),
        ))
        return self

    def heal(
        self, edges: Iterable[Tuple[int, int]], at_round: int
    ) -> "ChurnSchedule":
        self.events.append(ChurnEvent(
            "heal", round=int(at_round),
            edges=tuple(_norm_edge(e) for e in edges),
        ))
        return self

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def changes_membership(self) -> bool:
        """True when any node joins or leaves (or starts absent)."""
        return bool(self.initially_absent) or any(
            e.kind in ("join", "leave") for e in self.events
        )

    @property
    def joiners(self) -> FrozenSet[int]:
        return frozenset(e.node for e in self.events if e.kind == "join")

    @property
    def leavers(self) -> FrozenSet[int]:
        return frozenset(e.node for e in self.events if e.kind == "leave")

    @property
    def max_round(self) -> int:
        return max((e.round for e in self.events), default=0)

    def sorted_events(self) -> List[ChurnEvent]:
        """Events in application order: by round, insertion order within
        a round (exactly how :class:`ChurnNetwork` applies them)."""
        return sorted(self.events, key=lambda e: e.round)

    def membership(self) -> "MembershipTimeline":
        """The presence timeline implied by this schedule."""
        return MembershipTimeline(self)

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        """Plain-dict rendering; inverse of :meth:`from_json` (the pair
        round-trips exactly, which chaos artifacts rely on)."""
        events = []
        for e in self.events:
            entry: dict = {"kind": e.kind, "round": e.round}
            if e.kind in ("join", "leave"):
                entry["node"] = e.node
            elif e.edge is not None:
                entry["edge"] = [e.edge[0], e.edge[1]]
            else:
                entry["edges"] = [[u, v] for u, v in e.edges]
            events.append(entry)
        return {
            "events": events,
            "initially_absent": sorted(self.initially_absent),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChurnSchedule":
        events = [
            ChurnEvent(
                kind=entry["kind"],
                round=int(entry["round"]),
                node=int(entry.get("node", -1)),
                edge=(
                    tuple(int(v) for v in entry["edge"])
                    if entry.get("edge") is not None else None
                ),
                edges=tuple(
                    (int(u), int(v)) for u, v in entry.get("edges", ())
                ),
            )
            for entry in data.get("events", ())
        ]
        return cls(
            events=events,
            initially_absent=frozenset(
                int(v) for v in data.get("initially_absent", ())
            ),
        )

    # -- validation ----------------------------------------------------

    def validate(self, n: int) -> None:
        """Raise on out-of-range ids and internally inconsistent
        timelines.

        Structural errors rejected:

        - a ``join`` of a node that is already present, or a ``leave``
          of a node that is already absent (double-toggles always
          indicate a mis-built schedule);
        - severing an already-severed edge or restoring an active one
          (the ``edge_down``/``edge_up`` analogue of the fault
          schedule's overlapping-jam-window check — a double sever
          would silently make the later ``edge_up`` a no-op);
        - an ``initially_absent`` node that never joins is legal (it
          simply never exists for this run), but a ``join`` of a node
          that was never absent is not.
        """
        for v in self.initially_absent:
            if not 0 <= v < n:
                raise ValueError(
                    f"initially_absent references node {v}, but n={n}"
                )
        for e in self.events:
            ids = (e.node,) if e.kind in ("join", "leave") else tuple(
                v for edge in e.cut_edges() for v in edge
            )
            for v in ids:
                if not 0 <= v < n:
                    raise ValueError(
                        f"churn event {e} references node {v}, but n={n}"
                    )

        absent: Set[int] = set(self.initially_absent)
        severed: Set[FrozenSet[int]] = set()
        for e in self.sorted_events():
            if e.kind == "join":
                if e.node not in absent:
                    raise ValueError(
                        f"node {e.node} joins at round {e.round} but is "
                        f"already present (not initially absent and no "
                        f"prior leave)"
                    )
                absent.discard(e.node)
            elif e.kind == "leave":
                if e.node in absent:
                    raise ValueError(
                        f"node {e.node} leaves at round {e.round} but is "
                        f"already absent"
                    )
                absent.add(e.node)
            elif e.kind in ("edge_down", "partition"):
                for edge in e.cut_edges():
                    key = frozenset(edge)
                    if key in severed:
                        raise ValueError(
                            f"{e.kind} at round {e.round} severs edge "
                            f"{edge}, already severed with no intervening "
                            f"restore"
                        )
                    severed.add(key)
            else:  # edge_up / heal
                for edge in e.cut_edges():
                    key = frozenset(edge)
                    if key not in severed:
                        raise ValueError(
                            f"{e.kind} at round {e.round} restores edge "
                            f"{edge}, which is not severed"
                        )
                    severed.discard(key)


class MembershipTimeline:
    """Presence-as-a-function-of-time, derived from a schedule.

    Used by the churn oracles to audit transcripts: for each node the
    timeline holds its sorted presence toggle rounds, so
    :meth:`is_present` is a binary search, O(log toggles).
    """

    def __init__(self, schedule: ChurnSchedule):
        self._toggles: Dict[int, List[int]] = {}
        self._initial_absent = frozenset(schedule.initially_absent)
        for e in schedule.sorted_events():
            if e.kind in ("join", "leave"):
                self._toggles.setdefault(e.node, []).append(e.round)

    def is_present(self, node: int, round_index: int) -> bool:
        """Presence of ``node`` while ``round_index`` is resolved (an
        event at round r takes effect before round r resolves)."""
        import bisect

        flips = self._toggles.get(node, ())
        applied = bisect.bisect_right(flips, round_index)
        start_absent = node in self._initial_absent
        return (not start_absent) == (applied % 2 == 0)

    def toggles(self, node: int) -> Tuple[int, ...]:
        """The node's sorted presence-flip rounds (possibly empty)."""
        return tuple(self._toggles.get(node, ()))

    def present_at(self, round_index: int, n: int) -> FrozenSet[int]:
        return frozenset(
            v for v in range(n) if self.is_present(v, round_index)
        )

    def absent_forever_after(self, n: int) -> FrozenSet[int]:
        """Nodes absent at the end of the whole timeline."""
        last = max(
            (f[-1] for f in self._toggles.values()), default=0
        )
        return frozenset(
            v for v in range(n) if not self.is_present(v, last)
        )


class ChurnNetwork:
    """A radio network whose graph follows a :class:`ChurnSchedule`.

    Presents the :class:`~repro.radio.network.RadioNetwork` interface
    (``resolve_round``, ``n``, ``has_edge`` …) so protocol engines and
    the fault layer run unchanged.  Static topology queries
    (``has_edge``, ``neighbors``, ``max_degree``, ``diameter``) report
    the *footprint* graph — they are the conservative bounds budgets
    are sized from; the time-varying view is exposed through
    :meth:`edge_active`, :meth:`active_neighbors`, :meth:`is_present`.

    ``resolve_round`` implements the paper's reception rule over the
    current graph: a present node receives iff exactly one present
    neighbor across an active edge transmits and the node itself does
    not.  Absent transmitters are filtered (and counted) first — a
    departed node's signal is not in the air and does not collide.

    ``deliver_to_absent`` is the planted-bug switch for the chaos
    self-test: when true the layer "forgets" to gate receivers on
    presence, exactly the phantom-delivery bug the
    ``no_phantom_delivery`` oracle exists to catch.  Never set it
    outside tests.
    """

    def __init__(
        self,
        base: RadioNetwork,
        churn: Optional[ChurnSchedule] = None,
        deliver_to_absent: bool = False,
    ):
        self._base = base
        self.churn = churn or ChurnSchedule()
        self.churn.validate(base.n)
        self.deliver_to_absent = bool(deliver_to_absent)

        self.clock = 0
        self.absent: Set[int] = set(self.churn.initially_absent)
        self.severed: Set[FrozenSet[int]] = set()
        self._pending: List[ChurnEvent] = self.churn.sorted_events()

        # churn-exposure counters
        self.tx_suppressed_absent = 0
        self.rx_phantom_delivered = 0  # nonzero only under the planted bug
        self.joins_applied = 0
        self.leaves_applied = 0
        self.edges_severed = 0
        self.edges_restored = 0

    # ------------------------------------------------------------------
    # Clock and event machinery (mirrors DynamicFaultNetwork)
    # ------------------------------------------------------------------

    def _apply(self, event: ChurnEvent) -> None:
        if event.kind == "join":
            self.absent.discard(event.node)
            self.joins_applied += 1
        elif event.kind == "leave":
            self.absent.add(event.node)
            self.leaves_applied += 1
        elif event.kind in ("edge_down", "partition"):
            for edge in event.cut_edges():
                key = frozenset(edge)
                if key not in self.severed:
                    self.severed.add(key)
                    self.edges_severed += 1
        else:  # edge_up / heal
            for edge in event.cut_edges():
                key = frozenset(edge)
                if key in self.severed:
                    self.severed.discard(key)
                    self.edges_restored += 1

    def _catch_up(self, limit: int) -> None:
        if not self._pending:
            return
        remaining: List[ChurnEvent] = []
        for event in self._pending:
            if event.round <= limit:
                self._apply(event)
            else:
                remaining.append(event)
        self._pending = remaining

    def advance(self, rounds: int) -> None:
        """Let ``rounds`` silent/idle rounds elapse."""
        if rounds < 0:
            raise ValueError("cannot advance by a negative round count")
        self.advance_to(self.clock + rounds)

    def advance_to(self, round_index: int) -> None:
        """Jump the clock forward to ``round_index`` (no-op if behind)."""
        if round_index <= self.clock:
            return
        self.clock = round_index
        self._catch_up(round_index - 1)

    @property
    def next_event_round(self) -> Optional[int]:
        """Round of the earliest pending event (None when drained)."""
        return self._pending[0].round if self._pending else None

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def is_present(self, node: int) -> bool:
        return node not in self.absent

    def present_nodes(self) -> List[int]:
        return [v for v in range(self._base.n) if v not in self.absent]

    @property
    def departed_nodes(self) -> FrozenSet[int]:
        return frozenset(self.absent)

    def edge_active(self, u: int, v: int) -> bool:
        """True when the edge exists *right now*: in the footprint, not
        severed, both endpoints present."""
        return (
            self._base.has_edge(u, v)
            and frozenset((u, v)) not in self.severed
            and u not in self.absent
            and v not in self.absent
        )

    def active_neighbors(self, v: int) -> List[int]:
        if v in self.absent:
            return []
        return [
            int(u) for u in self._base.neighbors(v)
            if self.edge_active(v, int(u))
        ]

    def churn_stats(self) -> Dict[str, int]:
        return {
            "tx_suppressed_absent": self.tx_suppressed_absent,
            "rx_phantom_delivered": self.rx_phantom_delivered,
            "joins_applied": self.joins_applied,
            "leaves_applied": self.leaves_applied,
            "edges_severed": self.edges_severed,
            "edges_restored": self.edges_restored,
            "currently_absent": len(self.absent),
            "currently_severed": len(self.severed),
        }

    # ------------------------------------------------------------------
    # The churned reception rule
    # ------------------------------------------------------------------

    def resolve_round(self, transmissions: Mapping[int, object]) -> Dict[int, object]:
        self._catch_up(self.clock)
        self.clock += 1

        # Absent transmitters are not on the air at all (no interference).
        if self.absent:
            filtered = {
                tx: msg for tx, msg in transmissions.items()
                if tx not in self.absent
            }
            self.tx_suppressed_absent += len(transmissions) - len(filtered)
        else:
            filtered = dict(transmissions)

        # Reception rule over the current graph: count transmitting
        # neighbors across active edges; exactly one => reception.
        counts: Dict[int, int] = {}
        message_at: Dict[int, object] = {}
        for tx in filtered:
            msg = filtered[tx]
            for u in self._base.neighbors(tx):
                u = int(u)
                if frozenset((tx, u)) in self.severed:
                    continue
                counts[u] = counts.get(u, 0) + 1
                message_at[u] = msg

        received: Dict[int, object] = {}
        for v in sorted(counts):
            if counts[v] != 1 or v in filtered:
                continue
            if v in self.absent:
                if self.deliver_to_absent:
                    # planted bug: phantom delivery to a departed node
                    received[v] = message_at[v]
                    self.rx_phantom_delivered += 1
                continue
            received[v] = message_at[v]
        return received

    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        if name == "_base":  # guard against recursion during unpickling
            raise AttributeError(name)
        return getattr(self._base, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChurnNetwork({self._base!r}, events={len(self.churn)}, "
            f"clock={self.clock}, absent={sorted(self.absent)})"
        )


# ----------------------------------------------------------------------
# Mobility lowering
# ----------------------------------------------------------------------

def churn_from_mobility(
    edge_sets: Sequence[Iterable[Tuple[int, int]]],
    epoch_length: int,
    start_round: int = 0,
) -> Tuple[List[Tuple[int, int]], ChurnSchedule]:
    """Lower a sequence of per-epoch edge sets to a churn schedule.

    ``edge_sets[i]`` is the graph during epoch ``i`` (rounds
    ``[start_round + i*epoch_length, ...)``); consecutive epochs are
    diffed into ``edge_down``/``edge_up`` flips at the boundary.  The
    returned footprint edge list is the union over all epochs — build
    the :class:`ChurnNetwork` base from it.  Edges absent from epoch 0
    but present later start severed via an ``edge_down`` at round 0.
    """
    if epoch_length < 1:
        raise ValueError("epoch_length must be >= 1")
    if not edge_sets:
        raise ValueError("need at least one epoch")
    normalized = [
        {_norm_edge(e) for e in epoch} for epoch in edge_sets
    ]
    footprint = sorted(set().union(*normalized))
    schedule = ChurnSchedule()
    initially_off = [e for e in footprint if e not in normalized[0]]
    for e in initially_off:
        schedule.edge_down(e, at_round=start_round)
    prev = normalized[0]
    for i, cur in enumerate(normalized[1:], start=1):
        boundary = start_round + i * epoch_length
        for e in sorted(prev - cur):
            schedule.edge_down(e, at_round=boundary)
        for e in sorted(cur - prev):
            schedule.edge_up(e, at_round=boundary)
        prev = cur
    return footprint, schedule


# ----------------------------------------------------------------------
# Seeded sampling
# ----------------------------------------------------------------------

def random_churn_schedule(
    network: RadioNetwork,
    horizon: int,
    seed: SeedLike = None,
    leave_frac: float = 0.0,
    join_frac: float = 0.0,
    edge_flips: int = 0,
    rejoin_prob: float = 0.0,
    restore_prob: float = 0.7,
    partition_prob: float = 0.0,
    exclude: Iterable[int] = (),
) -> ChurnSchedule:
    """Draw one valid churn schedule over ``network``'s footprint.

    - ``leave_frac`` of the eligible nodes depart at seeded rounds in
      ``[1, horizon)``; each rejoins later with ``rejoin_prob``.
    - ``join_frac`` of the eligible nodes start absent and join at a
      seeded round (they are disjoint from the leavers).
    - ``edge_flips`` mobility flips sever a random edge (both endpoints
      untouched by membership churn) and restore it with
      ``restore_prob``; each edge is flipped at most once, so the
      timeline always validates.
    - with ``partition_prob`` one partition/heal pair severs the
      footprint cut around a random seed node's 1-ball.

    Same seed, same schedule — byte-for-byte in its JSON form.
    """
    if horizon < 2:
        raise ValueError("horizon must be >= 2")
    rng = make_rng(seed)
    n = network.n
    excluded = set(int(v) for v in exclude)
    eligible = [v for v in range(n) if v not in excluded]

    schedule = ChurnSchedule()
    touched: Set[int] = set()

    def _draw(pool: List[int], count: int) -> List[int]:
        if count <= 0 or not pool:
            return []
        count = min(count, len(pool))
        chosen = rng.choice(len(pool), size=count, replace=False)
        return sorted(pool[int(i)] for i in chosen)

    # joiners first: they start absent, so they must not also leave
    joiners = _draw(eligible, int(math.floor(join_frac * len(eligible))))
    for v in joiners:
        touched.add(v)
    schedule.initially_absent = frozenset(joiners)
    for v in joiners:
        schedule.join(v, at_round=int(rng.integers(1, horizon)))

    leavers = _draw(
        [v for v in eligible if v not in touched],
        int(math.floor(leave_frac * len(eligible))),
    )
    for v in leavers:
        touched.add(v)
        at = int(rng.integers(1, horizon))
        schedule.leave(v, at_round=at)
        if rng.random() < rejoin_prob:
            schedule.join(
                v, at_round=at + int(rng.integers(1, max(2, horizon // 3)))
            )

    # mobility flips on edges whose endpoints keep stable membership
    stable_edges = [
        (u, int(v))
        for u in range(n)
        for v in network.neighbors(u)
        if u < int(v) and u not in touched and int(v) not in touched
    ]
    flipped: Set[Tuple[int, int]] = set()
    for _ in range(int(edge_flips)):
        candidates = [e for e in stable_edges if e not in flipped]
        if not candidates:
            break
        edge = candidates[int(rng.integers(0, len(candidates)))]
        flipped.add(edge)
        down_at = int(rng.integers(1, horizon))
        schedule.edge_down(edge, at_round=down_at)
        if rng.random() < restore_prob:
            schedule.edge_up(
                edge,
                at_round=down_at + int(rng.integers(1, max(2, horizon // 3))),
            )

    if partition_prob > 0 and rng.random() < partition_prob:
        center = eligible[int(rng.integers(0, len(eligible)))]
        island = {center} | {int(u) for u in network.neighbors(center)}
        cut = [
            e for e in stable_edges
            if (e[0] in island) != (e[1] in island) and e not in flipped
        ]
        if cut:
            at = int(rng.integers(1, horizon))
            schedule.partition(cut, at_round=at)
            schedule.heal(
                cut, at_round=at + int(rng.integers(1, max(2, horizon // 2)))
            )

    schedule.validate(n)
    return schedule


# ----------------------------------------------------------------------
# Adversarial (worst-case) churn
# ----------------------------------------------------------------------
#
# Seeded churn answers "how does the system fare on average?"; the
# adversarial scheduler answers "how does it fare against an adversary
# that knows the protocol?" (the Ahmadi–Kuhn 1610.02931 regime, where
# topology changes are chosen by an adversary subject to a rate
# budget).  Each strategy exploits a specific structural dependence of
# the continuous driver:
#
# - ``leader_target`` removes the expected election winners (highest
#   surviving ids) one after another, each departure timed so the
#   freshly re-elected leader is the next to go — every leave forces a
#   full re-election + catch-up cycle;
# - ``cut_edges`` flaps the footprint's bridges (the edges whose loss
#   disconnects the most nodes), each outage sized to one repair
#   window so the Decay repair pays full price every time;
# - ``partition_sync`` severs a whole cut in lock-step with the
#   driver's periodic invariant check: the partition lands just after
#   a check, holds across the next one (burning a repair budget on an
#   unhealable split), and heals immediately before the following
#   check re-pays the repair cost.
#
# The output is a plain, fully validated :class:`ChurnSchedule`, so
# ``ChurnNetwork``, the chaos sampler, and
# ``FaultSchedule.validate(churn=)`` compose with it unchanged.  All
# strategies are deterministic functions of (spec, footprint): the
# ``seed`` only rotates target selection, so the same spec always
# rebuilds the byte-identical schedule (the property the
# ``adversarial_budget_respected`` oracle checks).


@dataclass(frozen=True)
class ChurnBudget:
    """The adversary's rate limits.

    ``max_events`` bounds the total number of schedule events,
    ``max_absent_frac`` the fraction of footprint nodes absent at any
    instant, and ``max_severed_edges`` the number of concurrently
    severed edges (a partition's cut counts each edge).
    """

    max_events: int = 16
    max_absent_frac: float = 0.25
    max_severed_edges: int = 8

    def __post_init__(self):
        if self.max_events < 0:
            raise ValueError("max_events must be >= 0")
        if not 0.0 <= self.max_absent_frac <= 1.0:
            raise ValueError("max_absent_frac must be in [0, 1]")
        if self.max_severed_edges < 0:
            raise ValueError("max_severed_edges must be >= 0")

    def absent_cap(self, n: int) -> int:
        return max(1, int(math.floor(self.max_absent_frac * n)))

    def violations(self, schedule: ChurnSchedule, n: int) -> List[str]:
        """Every way ``schedule`` exceeds this budget (empty = ok)."""
        problems: List[str] = []
        total = len(schedule.events) + len(schedule.initially_absent)
        if total > self.max_events:
            problems.append(
                f"{total} events (incl. initially_absent) exceed "
                f"max_events={self.max_events}"
            )
        absent = set(schedule.initially_absent)
        severed: Set[FrozenSet[int]] = set()
        cap = self.absent_cap(n)
        for e in schedule.sorted_events():
            if e.kind == "join":
                absent.discard(e.node)
            elif e.kind == "leave":
                absent.add(e.node)
                if len(absent) > cap:
                    problems.append(
                        f"{len(absent)} nodes absent at round {e.round} "
                        f"exceed absent cap {cap} "
                        f"(max_absent_frac={self.max_absent_frac})"
                    )
            elif e.kind in ("edge_down", "partition"):
                severed.update(frozenset(c) for c in e.cut_edges())
                if len(severed) > self.max_severed_edges:
                    problems.append(
                        f"{len(severed)} edges severed at round {e.round} "
                        f"exceed max_severed_edges={self.max_severed_edges}"
                    )
            else:
                for c in e.cut_edges():
                    severed.discard(frozenset(c))
        return problems

    def to_json(self) -> dict:
        return {
            "max_events": self.max_events,
            "max_absent_frac": self.max_absent_frac,
            "max_severed_edges": self.max_severed_edges,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChurnBudget":
        return cls(
            max_events=int(data["max_events"]),
            max_absent_frac=float(data["max_absent_frac"]),
            max_severed_edges=int(data["max_severed_edges"]),
        )


def _footprint_adjacency(network: RadioNetwork) -> Dict[int, List[int]]:
    return {
        u: sorted(int(v) for v in network.neighbors(u))
        for u in range(network.n)
    }


def _bridges_with_weight(
    adj: Dict[int, List[int]]
) -> List[Tuple[int, Tuple[int, int]]]:
    """Footprint bridges as ``(min_side_size, edge)``, heaviest first.

    Iterative Tarjan lowlink; the weight of a bridge is the size of the
    smaller component its removal creates — the number of nodes the
    adversary disconnects by severing it.
    """
    n = len(adj)
    disc = [-1] * n
    low = [0] * n
    subtree = [1] * n
    parent_edge = [-1] * n
    bridges: List[Tuple[int, Tuple[int, int]]] = []
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        stack: List[Tuple[int, int, int]] = [(root, -1, 0)]
        order: List[int] = []
        while stack:
            v, parent, idx = stack.pop()
            if idx == 0:
                disc[v] = low[v] = timer
                timer += 1
                parent_edge[v] = parent
                order.append(v)
            resumed = False
            for j in range(idx, len(adj[v])):
                u = adj[v][j]
                if u == parent:
                    continue
                if disc[u] == -1:
                    stack.append((v, parent, j + 1))
                    stack.append((u, v, 0))
                    resumed = True
                    break
                low[v] = min(low[v], disc[u])
            if resumed:
                continue
        for v in reversed(order):
            p = parent_edge[v]
            if p >= 0:
                low[p] = min(low[p], low[v])
                subtree[p] += subtree[v]
                if low[v] > disc[p]:
                    side = min(subtree[v], n - subtree[v])
                    bridges.append((side, _norm_edge((p, v))))
    bridges.sort(key=lambda item: (-item[0], item[1]))
    return bridges


@dataclass(frozen=True)
class AdversarialChurnSpec:
    """A compact, replayable recipe for a worst-case churn schedule.

    ``build(network)`` lowers the spec to a concrete, validated
    :class:`ChurnSchedule` deterministically — campaigns store the spec
    (JSON round-trips exactly) and the oracle re-derives the schedule
    to prove the one in the artifact is the adversary's, untampered and
    within budget.  ``exclude`` pins nodes (pre-chosen leader, insider
    ids, jam-window targets) whose membership the adversary may not
    touch, keeping cross-validation with fault schedules satisfiable.
    """

    strategy: str
    horizon: int
    budget: ChurnBudget = ChurnBudget()
    seed: int = 0
    repair_window: int = 64
    start_round: int = 1
    exclude: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.strategy not in ADVERSARIAL_STRATEGIES:
            raise ValueError(
                f"unknown adversarial strategy {self.strategy!r}; "
                f"expected one of {ADVERSARIAL_STRATEGIES}"
            )
        if self.horizon < 4:
            raise ValueError("adversarial horizon must be >= 4")
        if self.repair_window < 1:
            raise ValueError("repair_window must be >= 1")
        if self.start_round < 1:
            raise ValueError("start_round must be >= 1")
        object.__setattr__(
            self, "exclude",
            tuple(sorted(set(int(v) for v in self.exclude))),
        )

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "horizon": self.horizon,
            "budget": self.budget.to_json(),
            "seed": self.seed,
            "repair_window": self.repair_window,
            "start_round": self.start_round,
            "exclude": list(self.exclude),
        }

    @classmethod
    def from_json(cls, data: dict) -> "AdversarialChurnSpec":
        return cls(
            strategy=str(data["strategy"]),
            horizon=int(data["horizon"]),
            budget=ChurnBudget.from_json(data["budget"]),
            seed=int(data["seed"]),
            repair_window=int(data["repair_window"]),
            start_round=int(data["start_round"]),
            exclude=tuple(int(v) for v in data.get("exclude", ())),
        )

    # -- lowering ------------------------------------------------------

    def build(self, network: RadioNetwork) -> ChurnSchedule:
        """Lower to a concrete schedule over ``network``'s footprint.

        Deterministic: the same spec and footprint always produce the
        byte-identical schedule.  The result is validated and provably
        within budget before it is returned.
        """
        n = network.n
        schedule = ChurnSchedule()
        if self.strategy == "leader_target":
            self._leader_target(network, schedule, self.budget.max_events)
        elif self.strategy == "cut_edges":
            self._cut_edges(network, schedule, self.budget.max_events)
        elif self.strategy == "partition_sync":
            self._partition_sync(network, schedule, self.budget.max_events)
        else:  # combined
            half = self.budget.max_events // 2
            self._leader_target(network, schedule, half)
            self._partition_sync(
                network, schedule, self.budget.max_events - half
            )
        schedule.validate(n)
        problems = self.budget.violations(schedule, n)
        if problems:  # pragma: no cover - construction guarantees empty
            raise AssertionError(
                f"adversarial schedule exceeds its own budget: {problems}"
            )
        return schedule

    def _leader_target(
        self,
        network: RadioNetwork,
        schedule: ChurnSchedule,
        event_budget: int,
    ) -> None:
        """Stagger leave/re-join pairs of the expected election winners.

        Victims are the highest non-excluded ids, in the order the
        election would crown them; each re-joins before the next leave
        so at most one adversarial absence is in flight (well under any
        absent cap).
        """
        excluded = set(self.exclude)
        victims = [v for v in range(network.n - 1, -1, -1)
                   if v not in excluded]
        if not victims or event_budget < 2:
            return
        pairs = min(event_budget // 2, len(victims),
                    max(1, (self.horizon - self.start_round)
                        // max(2, self.repair_window)))
        rotation = self.seed % len(victims)
        victims = victims[rotation:] + victims[:rotation]
        period = max(2, (self.horizon - self.start_round) // pairs)
        gap = max(1, min(period - 1, 2 * self.repair_window))
        made = 0
        for i, v in enumerate(victims):
            if made >= pairs:
                break
            at = self.start_round + i * period
            back = at + gap
            if back >= self.horizon:
                break
            schedule.leave(v, at_round=at)
            schedule.join(v, at_round=back)
            made += 1

    def _cut_edges(
        self,
        network: RadioNetwork,
        schedule: ChurnSchedule,
        event_budget: int,
    ) -> None:
        """Flap the highest-weight bridges, one repair window each."""
        adj = _footprint_adjacency(network)
        ranked = [edge for _, edge in _bridges_with_weight(adj)]
        if not ranked:
            # no bridges: fall back to the most fragile edges (lowest
            # combined endpoint degree — the sparsest connectivity)
            ranked = sorted(
                (
                    _norm_edge((u, v))
                    for u in adj for v in adj[u] if u < v
                ),
                key=lambda e: (len(adj[e[0]]) + len(adj[e[1]]), e),
            )
        if not ranked or event_budget < 2:
            return
        count = min(
            event_budget // 2,
            self.budget.max_severed_edges,
            len(ranked),
        )
        rotation = self.seed % len(ranked)
        ranked = ranked[rotation:] + ranked[:rotation]
        span = max(2, (self.horizon - self.start_round) // max(1, count))
        outage = max(1, min(span - 1, self.repair_window))
        made = 0
        for i, edge in enumerate(ranked):
            if made >= count:
                break
            down = self.start_round + i * span
            up = down + outage
            if up >= self.horizon:
                break
            schedule.edge_down(edge, at_round=down)
            schedule.edge_up(edge, at_round=up)
            made += 1

    def _partition_sync(
        self,
        network: RadioNetwork,
        schedule: ChurnSchedule,
        event_budget: int,
    ) -> None:
        """Partition/heal pairs phase-locked to the repair window.

        The cut is the heaviest affordable bridge, or failing that the
        full incident cut of the lowest-degree node (isolating it);
        each partition lands one round after a repair-window boundary
        and heals one window later, straddling exactly one invariant
        check.
        """
        adj = _footprint_adjacency(network)
        cut: List[Tuple[int, int]] = []
        bridges = [
            edge for _, edge in _bridges_with_weight(adj)
        ]
        if bridges and self.budget.max_severed_edges >= 1:
            cut = [bridges[self.seed % len(bridges)]]
        else:
            isolatable = sorted(
                (v for v in adj
                 if 0 < len(adj[v]) <= self.budget.max_severed_edges),
                key=lambda v: (len(adj[v]), v),
            )
            if isolatable:
                victim = isolatable[self.seed % len(isolatable)]
                cut = [_norm_edge((victim, u)) for u in adj[victim]]
        if not cut or event_budget < 2:
            return
        window = max(2, self.repair_window)
        pairs = min(
            event_budget // 2,
            max(1, (self.horizon - self.start_round) // (2 * window)),
        )
        for j in range(pairs):
            at = self.start_round + j * 2 * window
            heal_at = at + window
            if heal_at >= self.horizon:
                break
            schedule.partition(cut, at_round=at)
            schedule.heal(cut, at_round=heal_at)


def adversarial_churn_schedule(
    network: RadioNetwork,
    horizon: int,
    strategy: str = "leader_target",
    budget: Optional[ChurnBudget] = None,
    seed: int = 0,
    repair_window: int = 64,
    start_round: int = 1,
    exclude: Iterable[int] = (),
) -> Tuple[AdversarialChurnSpec, ChurnSchedule]:
    """Convenience: build a spec and lower it in one call."""
    spec = AdversarialChurnSpec(
        strategy=strategy,
        horizon=int(horizon),
        budget=budget or ChurnBudget(),
        seed=int(seed),
        repair_window=int(repair_window),
        start_round=int(start_round),
        exclude=tuple(exclude),
    )
    return spec, spec.build(network)
