"""Dynamic packet arrivals — the paper's second open problem.

The conclusions note: "In more practical scenario, packets appear at
nodes dynamically; a challenging direction would be to adapt 'static'
solutions ... to such more dynamic setting."  This package provides the
natural first adaptation: *batching*.  Arriving packets queue at their
origins; whenever the previous broadcast finishes, all queued packets are
broadcast together with the static algorithm.  Because the static
algorithm's amortized cost per packet is ``O(logΔ)`` for large batches,
the batched system is stable whenever packets arrive slower than one per
``c·logΔ`` rounds — and the experiments measure exactly that threshold.

- :mod:`repro.dynamic.arrivals` — arrival-process generators (Poisson,
  periodic, bursty).
- :mod:`repro.dynamic.batch` — the batched dynamic broadcaster and its
  latency/throughput accounting.
"""

from repro.dynamic.arrivals import (
    PacketArrival,
    burst_arrivals,
    periodic_arrivals,
    poisson_arrivals,
)
from repro.dynamic.batch import (
    BatchRecord,
    BatchedDynamicBroadcast,
    DynamicBroadcastResult,
)
from repro.dynamic.policies import (
    BatchPolicy,
    ImmediatePolicy,
    SizeThresholdPolicy,
    TimerPolicy,
)

__all__ = [
    "BatchPolicy",
    "BatchRecord",
    "BatchedDynamicBroadcast",
    "DynamicBroadcastResult",
    "ImmediatePolicy",
    "PacketArrival",
    "SizeThresholdPolicy",
    "TimerPolicy",
    "burst_arrivals",
    "periodic_arrivals",
    "poisson_arrivals",
]
