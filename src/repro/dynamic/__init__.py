"""Dynamic packet arrivals — the paper's second open problem.

The conclusions note: "In more practical scenario, packets appear at
nodes dynamically; a challenging direction would be to adapt 'static'
solutions ... to such more dynamic setting."  This package provides the
natural first adaptation: *batching*.  Arriving packets queue at their
origins; whenever the previous broadcast finishes, all queued packets are
broadcast together with the static algorithm.  Because the static
algorithm's amortized cost per packet is ``O(logΔ)`` for large batches,
the batched system is stable whenever packets arrive slower than one per
``c·logΔ`` rounds — and the experiments measure exactly that threshold.

- :mod:`repro.dynamic.arrivals` — arrival-process generators (Poisson,
  periodic, bursty), both fixed-horizon lists and streaming processes.
- :mod:`repro.dynamic.batch` — the batched dynamic broadcaster and its
  latency/throughput accounting.
- :mod:`repro.dynamic.churn` — topology churn: node join/leave, mobility
  edge flips, partition/heal, applied through ``resolve_round``.
- :mod:`repro.dynamic.continuous` — the open-ended continuous driver
  with latency SLOs, bounded queues, backpressure, and churn-triggered
  incremental tree repair.
"""

from repro.dynamic.arrivals import (
    ArrivalProcess,
    BurstProcess,
    PacketArrival,
    PeriodicProcess,
    PoissonProcess,
    build_arrival_process,
    burst_arrivals,
    periodic_arrivals,
    poisson_arrivals,
)
from repro.dynamic.churn import (
    ADVERSARIAL_STRATEGIES,
    AdversarialChurnSpec,
    ChurnBudget,
    ChurnEvent,
    ChurnNetwork,
    ChurnSchedule,
    MembershipTimeline,
    adversarial_churn_schedule,
    churn_from_mobility,
    random_churn_schedule,
)
from repro.dynamic.continuous import (
    ContinuousBroadcast,
    ContinuousPolicy,
    ContinuousResult,
)
from repro.dynamic.batch import (
    BatchRecord,
    BatchedDynamicBroadcast,
    DynamicBroadcastResult,
)
from repro.dynamic.policies import (
    BatchPolicy,
    ImmediatePolicy,
    SizeThresholdPolicy,
    TimerPolicy,
)

__all__ = [
    "ADVERSARIAL_STRATEGIES",
    "AdversarialChurnSpec",
    "ArrivalProcess",
    "BatchPolicy",
    "ChurnBudget",
    "BatchRecord",
    "BatchedDynamicBroadcast",
    "BurstProcess",
    "ChurnEvent",
    "ChurnNetwork",
    "ChurnSchedule",
    "ContinuousBroadcast",
    "ContinuousPolicy",
    "ContinuousResult",
    "DynamicBroadcastResult",
    "ImmediatePolicy",
    "MembershipTimeline",
    "PacketArrival",
    "PeriodicProcess",
    "PoissonProcess",
    "SizeThresholdPolicy",
    "TimerPolicy",
    "adversarial_churn_schedule",
    "build_arrival_process",
    "burst_arrivals",
    "churn_from_mobility",
    "periodic_arrivals",
    "poisson_arrivals",
    "random_churn_schedule",
]
