"""Arrival-process generators for the dynamic setting.

Each generator returns a time-sorted list of :class:`PacketArrival`
(arrival round + packet).  Packet payloads and pids are assigned exactly
as in the static workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.coding.packets import Packet, make_packets, required_packet_bits
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng


@dataclass(frozen=True)
class PacketArrival:
    """One packet appearing at its origin at the given round."""

    time: int
    packet: Packet


def _materialize(
    network: RadioNetwork,
    times: Sequence[int],
    origins: Sequence[int],
    rng: np.random.Generator,
    size_bits: Optional[int],
) -> List[PacketArrival]:
    bits = size_bits or required_packet_bits(network.n)
    packets = make_packets(list(origins), bits, seed=rng)
    arrivals = [
        PacketArrival(time=int(t), packet=p) for t, p in zip(times, packets)
    ]
    arrivals.sort(key=lambda a: (a.time, a.packet.pid))
    return arrivals


def poisson_arrivals(
    network: RadioNetwork,
    rate: float,
    horizon: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """Poisson arrivals at ``rate`` packets/round over ``horizon`` rounds,
    each at a uniformly random origin."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if horizon < 1:
        raise ValueError("horizon must be positive")
    rng = make_rng(seed)
    times: List[int] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        times.append(int(t))
    origins = rng.integers(0, network.n, size=len(times))
    return _materialize(network, times, origins.tolist(), rng, size_bits)


def periodic_arrivals(
    network: RadioNetwork,
    period: int,
    count: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """One packet every ``period`` rounds, ``count`` packets total."""
    if period < 1 or count < 0:
        raise ValueError("period must be >= 1 and count >= 0")
    rng = make_rng(seed)
    times = [i * period for i in range(count)]
    origins = rng.integers(0, network.n, size=count)
    return _materialize(network, times, origins.tolist(), rng, size_bits)


def burst_arrivals(
    network: RadioNetwork,
    burst_size: int,
    num_bursts: int,
    spacing: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """``num_bursts`` bursts of ``burst_size`` simultaneous packets,
    ``spacing`` rounds apart — the adversarial batching workload."""
    if burst_size < 1 or num_bursts < 0 or spacing < 1:
        raise ValueError("invalid burst parameters")
    rng = make_rng(seed)
    times: List[int] = []
    for b in range(num_bursts):
        times.extend([b * spacing] * burst_size)
    origins = rng.integers(0, network.n, size=len(times))
    return _materialize(network, times, origins.tolist(), rng, size_bits)
