"""Arrival-process generators for the dynamic setting.

Two forms:

- the original **list generators** (:func:`poisson_arrivals`,
  :func:`periodic_arrivals`, :func:`burst_arrivals`) return a
  time-sorted list of :class:`PacketArrival` for a fixed horizon —
  fine for one-shot batched runs on a static graph;
- the **streaming processes** (:class:`PoissonProcess`,
  :class:`PeriodicProcess`, :class:`BurstProcess`) draw arrivals one
  round at a time over whatever origin pool is *currently present*, so
  open-ended continuous runs under topology churn never assign a
  packet to a node that has left.  Each process serializes to a plain
  spec dict (:meth:`ArrivalProcess.spec` / :func:`build_arrival_process`)
  that chaos artifacts embed for bit-exact replay.

Determinism contract (tested): the same seed yields byte-identical
output — identical counts, origins, pids, and payload bytes — as long
as the per-round origin pools match, which replay guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coding.packets import Packet, make_packets, required_packet_bits
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng


@dataclass(frozen=True)
class PacketArrival:
    """One packet appearing at its origin at the given round."""

    time: int
    packet: Packet


def _materialize(
    network: RadioNetwork,
    times: Sequence[int],
    origins: Sequence[int],
    rng: np.random.Generator,
    size_bits: Optional[int],
) -> List[PacketArrival]:
    bits = size_bits or required_packet_bits(network.n)
    packets = make_packets(list(origins), bits, seed=rng)
    arrivals = [
        PacketArrival(time=int(t), packet=p) for t, p in zip(times, packets)
    ]
    arrivals.sort(key=lambda a: (a.time, a.packet.pid))
    return arrivals


def poisson_arrivals(
    network: RadioNetwork,
    rate: float,
    horizon: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """Poisson arrivals at ``rate`` packets/round over ``horizon`` rounds,
    each at a uniformly random origin."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if horizon < 1:
        raise ValueError("horizon must be positive")
    rng = make_rng(seed)
    times: List[int] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        times.append(int(t))
    origins = rng.integers(0, network.n, size=len(times))
    return _materialize(network, times, origins.tolist(), rng, size_bits)


def periodic_arrivals(
    network: RadioNetwork,
    period: int,
    count: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """One packet every ``period`` rounds, ``count`` packets total."""
    if period < 1 or count < 0:
        raise ValueError("period must be >= 1 and count >= 0")
    rng = make_rng(seed)
    times = [i * period for i in range(count)]
    origins = rng.integers(0, network.n, size=count)
    return _materialize(network, times, origins.tolist(), rng, size_bits)


def burst_arrivals(
    network: RadioNetwork,
    burst_size: int,
    num_bursts: int,
    spacing: int,
    seed: SeedLike = None,
    size_bits: Optional[int] = None,
) -> List[PacketArrival]:
    """``num_bursts`` bursts of ``burst_size`` simultaneous packets,
    ``spacing`` rounds apart — the adversarial batching workload."""
    if burst_size < 1 or num_bursts < 0 or spacing < 1:
        raise ValueError("invalid burst parameters")
    rng = make_rng(seed)
    times: List[int] = []
    for b in range(num_bursts):
        times.extend([b * spacing] * burst_size)
    origins = rng.integers(0, network.n, size=len(times))
    return _materialize(network, times, origins.tolist(), rng, size_bits)


# ----------------------------------------------------------------------
# Streaming processes for continuous operation
# ----------------------------------------------------------------------

class ArrivalProcess:
    """Round-at-a-time arrival generator for open-ended streams.

    Subclasses implement :meth:`count_at`; :meth:`draw` turns the count
    into concrete :class:`~repro.coding.packets.Packet` objects whose
    origins are drawn uniformly from the caller-supplied pool (the
    currently *present* nodes).  Draw order within a round is fixed —
    count, then origins, then payload bytes — so one seeded stream
    determines everything.
    """

    kind = "base"

    def __init__(self, size_bits: int, seed: SeedLike = None):
        if size_bits < 1:
            raise ValueError("size_bits must be >= 1")
        self.size_bits = int(size_bits)
        self.seed = seed
        self._rng = make_rng(seed)
        self._next_pid = 0
        self.total_emitted = 0

    def count_at(self, round_index: int) -> int:
        raise NotImplementedError

    def draw(self, round_index: int, origins_pool: Sequence[int]) -> List[Packet]:
        """Arrivals for ``round_index`` with origins from ``origins_pool``
        (empty pool ⇒ the round's arrivals are lost before injection)."""
        count = self.count_at(round_index)
        if count <= 0 or not origins_pool:
            return []
        idx = self._rng.integers(0, len(origins_pool), size=count)
        origins = [int(origins_pool[int(i)]) for i in idx]
        packets = make_packets(
            origins, self.size_bits, seed=self._rng,
            first_pid=self._next_pid,
        )
        self._next_pid += len(packets)
        self.total_emitted += len(packets)
        return packets

    def _params(self) -> Dict[str, object]:
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """JSON-ready description; inverse of :func:`build_arrival_process`.

        Only available when the process was seeded with a
        JSON-representable value (int/str/None) — chaos campaigns always
        use plain int seeds.
        """
        if self.seed is not None and not isinstance(self.seed, (int, str)):
            raise TypeError(
                "spec() needs a JSON-representable seed (int/str/None), "
                f"got {type(self.seed).__name__}"
            )
        base: Dict[str, object] = {
            "kind": self.kind,
            "size_bits": self.size_bits,
            "seed": self.seed,
        }
        base.update(self._params())
        return base


class PoissonProcess(ArrivalProcess):
    """Poisson(rate) fresh packets per round."""

    kind = "poisson"

    def __init__(self, rate: float, size_bits: int, seed: SeedLike = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(size_bits, seed)
        self.rate = float(rate)

    def count_at(self, round_index: int) -> int:
        return int(self._rng.poisson(self.rate))

    def _params(self) -> Dict[str, object]:
        return {"rate": self.rate}


class PeriodicProcess(ArrivalProcess):
    """One packet every ``period`` rounds, starting at round 0."""

    kind = "periodic"

    def __init__(self, period: int, size_bits: int, seed: SeedLike = None):
        if period < 1:
            raise ValueError("period must be >= 1")
        super().__init__(size_bits, seed)
        self.period = int(period)

    def count_at(self, round_index: int) -> int:
        return 1 if round_index % self.period == 0 else 0

    def _params(self) -> Dict[str, object]:
        return {"period": self.period}


class BurstProcess(ArrivalProcess):
    """``burst_size`` simultaneous packets every ``spacing`` rounds."""

    kind = "burst"

    def __init__(
        self,
        burst_size: int,
        spacing: int,
        size_bits: int,
        seed: SeedLike = None,
    ):
        if burst_size < 1 or spacing < 1:
            raise ValueError("burst_size and spacing must be >= 1")
        super().__init__(size_bits, seed)
        self.burst_size = int(burst_size)
        self.spacing = int(spacing)

    def count_at(self, round_index: int) -> int:
        return self.burst_size if round_index % self.spacing == 0 else 0

    def _params(self) -> Dict[str, object]:
        return {"burst_size": self.burst_size, "spacing": self.spacing}


_PROCESS_KINDS = {
    "poisson": PoissonProcess,
    "periodic": PeriodicProcess,
    "burst": BurstProcess,
}


def build_arrival_process(
    spec: Dict[str, object],
    network: Optional[RadioNetwork] = None,
) -> ArrivalProcess:
    """Instantiate a streaming process from its spec dict.

    ``size_bits`` may be omitted from the spec when ``network`` is given
    (defaults to :func:`required_packet_bits` for its size).
    """
    kind = spec.get("kind")
    if kind not in _PROCESS_KINDS:
        raise ValueError(f"unknown arrival process kind {kind!r}")
    params = {
        k: v for k, v in spec.items() if k not in ("kind", "size_bits")
    }
    size_bits = spec.get("size_bits")
    if size_bits is None:
        if network is None:
            raise ValueError("spec omits size_bits and no network given")
        size_bits = required_packet_bits(network.n)
    return _PROCESS_KINDS[kind](size_bits=int(size_bits), **params)
