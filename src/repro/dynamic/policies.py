"""Batch dispatch policies for the dynamic broadcaster.

The batching discipline decides *when* the queued packets are handed to
the static algorithm.  Dispatching immediately minimizes latency at low
load but wastes the per-batch fixed cost (leader election, BFS, the
initial collection estimate) on tiny batches; accumulating larger batches
amortizes the fixed cost at the price of queueing delay.  The policies
here span that trade-off (measured in the A4 family of experiments):

- :class:`ImmediatePolicy` — dispatch whenever the queue is non-empty
  (the default; minimal latency).
- :class:`SizeThresholdPolicy` — wait for ``min_batch`` packets, but
  never hold the oldest packet longer than ``max_wait`` rounds.
- :class:`TimerPolicy` — dispatch on a fixed cadence (TDM-style).
"""

from __future__ import annotations

import abc


class BatchPolicy(abc.ABC):
    """Decides the earliest dispatch round for the current queue."""

    @abc.abstractmethod
    def dispatch_time(
        self, queue_first_time: int, queue_size: int, now: int
    ) -> int:
        """Earliest round ``>= now`` at which the current queue may be
        dispatched.  Arrivals landing before that round join the batch.

        Parameters
        ----------
        queue_first_time:
            Arrival round of the oldest queued packet.
        queue_size:
            Current queue length (``>= 1``).
        now:
            Current round.
        """


class ImmediatePolicy(BatchPolicy):
    """Dispatch as soon as anything is queued."""

    def dispatch_time(
        self, queue_first_time: int, queue_size: int, now: int
    ) -> int:
        return now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ImmediatePolicy()"


class SizeThresholdPolicy(BatchPolicy):
    """Wait for ``min_batch`` packets, capped by a ``max_wait`` deadline.

    The oldest queued packet is never held more than ``max_wait`` rounds:
    if the threshold has not been reached by then, the partial batch
    dispatches anyway (bounded worst-case latency).
    """

    def __init__(self, min_batch: int, max_wait: int):
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.min_batch = min_batch
        self.max_wait = max_wait

    def dispatch_time(
        self, queue_first_time: int, queue_size: int, now: int
    ) -> int:
        if queue_size >= self.min_batch:
            return now
        return max(now, queue_first_time + self.max_wait)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SizeThresholdPolicy(min_batch={self.min_batch}, "
            f"max_wait={self.max_wait})"
        )


class TimerPolicy(BatchPolicy):
    """Dispatch only at multiples of a fixed ``period`` (TDM cadence)."""

    def __init__(self, period: int):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period

    def dispatch_time(
        self, queue_first_time: int, queue_size: int, now: int
    ) -> int:
        remainder = now % self.period
        return now if remainder == 0 else now + (self.period - remainder)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimerPolicy(period={self.period})"
