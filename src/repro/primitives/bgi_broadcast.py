"""BGI randomized broadcast (Bar-Yehuda, Goldreich, Itai 1992).

A single message, held initially by one or more *sources*, is flooded by
repeated Decay epochs: every node that knows the message participates in
every subsequent epoch.  After ``O(D + log n)`` epochs of ``O(log Δ)``
slots each, all nodes know the message w.h.p. — this is the
``O((D + log n) log Δ)`` bound the paper cites.

The multi-source case (used by the paper's ALARM epoch) needs no change:
as the paper argues, broadcasting one message from many sources is no
slower than from a single super-source attached to all of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.primitives.decay import (
    decay_slots,
    decay_transmit_matrix,
    run_decay_epoch,
)
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class BroadcastResult:
    """Outcome of a BGI broadcast run.

    Attributes
    ----------
    rounds:
        Total rounds (slots) consumed.
    epochs:
        Number of Decay epochs executed.
    informed:
        Boolean array: which nodes know the message at the end.
    complete:
        Whether every node was informed.
    epochs_to_complete:
        Epoch index (1-based) at which the last node was informed, or -1
        if the run ended incomplete.
    """

    rounds: int
    epochs: int
    informed: np.ndarray
    complete: bool
    epochs_to_complete: int


def default_broadcast_epochs(network: RadioNetwork, factor: float = 4.0) -> int:
    """The ``O(D + log n)`` epoch budget with an explicit constant."""
    n = max(network.n, 2)
    return max(1, math.ceil(factor * (network.diameter + math.log2(n))))


def bgi_broadcast(
    network: RadioNetwork,
    sources: Iterable[int],
    rng: np.random.Generator,
    message: object = True,
    epochs: Optional[int] = None,
    stop_early: bool = False,
    num_slots: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
) -> BroadcastResult:
    """Flood ``message`` from ``sources`` to the whole network.

    Parameters
    ----------
    epochs:
        Fixed epoch budget.  Defaults to :func:`default_broadcast_epochs`.
        Protocols that embed the broadcast in a fixed-length schedule (the
        alarm epoch) must pass their budget and leave ``stop_early`` False
        so the time cost is deterministic.
    stop_early:
        When measuring completion time, stop as soon as everyone is
        informed (an omniscient-observer shortcut that does not alter the
        protocol's behaviour, only when we stop simulating it).

    Notes
    -----
    All informed nodes participate in every epoch, exactly as in the BGI
    protocol; "informed" spreads monotonically.
    """
    source_list = sorted(set(int(s) for s in sources))
    informed = np.zeros(network.n, dtype=bool)
    for s in source_list:
        informed[s] = True

    if epochs is None:
        epochs = default_broadcast_epochs(network)
    if num_slots is None:
        num_slots = decay_slots(network.max_degree)

    rounds = 0
    epochs_run = 0
    epochs_to_complete = 1 if informed.all() else -1

    if not source_list:
        return BroadcastResult(
            rounds=0,
            epochs=0,
            informed=informed,
            complete=bool(informed.all()),
            epochs_to_complete=epochs_to_complete,
        )

    if getattr(network, "engine", None) == "columnar":
        return _bgi_broadcast_columnar(
            network,
            informed,
            rng,
            message,
            epochs,
            num_slots,
            stop_early,
            trace,
            round_offset,
            epochs_to_complete,
        )

    def message_fn(node: int, slot: int) -> object:
        return message

    for epoch in range(epochs):
        participants = np.nonzero(informed)[0].tolist()
        receptions = run_decay_epoch(
            network,
            participants,
            message_fn,
            rng,
            num_slots=num_slots,
            trace=trace,
            round_offset=round_offset + rounds,
        )
        rounds += num_slots
        epochs_run += 1
        for slot_received in receptions:
            for receiver in slot_received:
                informed[receiver] = True
        if epochs_to_complete < 0 and informed.all():
            epochs_to_complete = epochs_run
            if stop_early:
                break

    return BroadcastResult(
        rounds=rounds,
        epochs=epochs_run,
        informed=informed,
        complete=bool(informed.all()),
        epochs_to_complete=epochs_to_complete,
    )


def _bgi_broadcast_columnar(
    network,
    informed: np.ndarray,
    rng: np.random.Generator,
    message: object,
    epochs: int,
    num_slots: int,
    stop_early: bool,
    trace: Optional[RoundTrace],
    round_offset: int,
    epochs_to_complete: int,
) -> BroadcastResult:
    """Vectorized flood driver used when the network engine is columnar.

    Per epoch, all participants' transmit decisions come from one
    :func:`decay_transmit_matrix` draw instead of per-slot Python loops,
    and once every node is informed the remaining budgeted epochs are
    charged to the round counter without being simulated — they cannot
    change any state, by the monotonicity of "informed".  The rounds /
    epochs / informed / epochs_to_complete accounting is identical to the
    reference loop; the RNG *stream* diverges after saturation (draws are
    skipped), which is exactly the divergence the semantic-equivalence
    oracles (rather than transcript digests) gate.

    When ``network`` is a bare :class:`RadioNetwork` the slots go through
    :meth:`RadioNetwork.resolve_round_vector` with no per-round dicts at
    all; fault wrappers and proxies (anything overriding or interposing
    ``resolve_round``) get real transmission dicts so their fault
    modeling and transcript recording see every round.
    """
    direct = (
        isinstance(network, RadioNetwork)
        and type(network).resolve_round is RadioNetwork.resolve_round
        and trace is None
    )
    rounds = 0
    epochs_run = 0
    for epoch in range(epochs):
        if trace is None and informed.all():
            # Saturated: every remaining epoch is state-invariant.
            # Charge its rounds; skip its coin flips and resolutions.
            remaining = epochs - epoch
            rounds += remaining * num_slots
            epochs_run += remaining
            break
        participants = np.flatnonzero(informed)
        coins = decay_transmit_matrix(participants.size, rng, num_slots)
        for slot in range(num_slots):
            tx = participants[coins[slot]]
            if direct:
                receivers, _ = network.resolve_round_vector(tx)
                if receivers.size:
                    informed[receivers] = True
            else:
                transmissions = dict.fromkeys(tx.tolist(), message)
                received = network.resolve_round(transmissions)
                if trace is not None:
                    trace.observe(
                        round_offset + rounds + slot, transmissions, received
                    )
                for receiver in received:
                    informed[receiver] = True
        rounds += num_slots
        epochs_run += 1
        if epochs_to_complete < 0 and informed.all():
            epochs_to_complete = epochs_run
            if stop_early:
                break
    return BroadcastResult(
        rounds=rounds,
        epochs=epochs_run,
        informed=informed,
        complete=bool(informed.all()),
        epochs_to_complete=epochs_to_complete,
    )
