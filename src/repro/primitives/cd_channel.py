"""Emulated single-hop channel with collision detection (BGI 1991).

Bar-Yehuda, Goldreich and Itai showed how to emulate one round of a
*single-hop multiple-access channel with collision detection* on a
multi-hop radio network without collision detection, w.h.p.  The paper
uses this (via a deterministic binary search) for its leader election
(Fact 1).

The emulation of one virtual round: every node that would have
*transmitted* on the virtual channel initiates a BGI broadcast wave of a
1-bit signal; after the wave's fixed ``O((D + log n)·logΔ)`` rounds,
every node that heard (or sent) the bit observes ``BUSY``, everyone else
observes ``SILENT``.  On a CD channel "busy" conflates single and
multiple transmitters, which is exactly the semantics the binary search
needs — it only asks *whether anyone* in a candidate set transmitted.

:class:`EmulatedCdChannel` packages this with round accounting so
higher-level algorithms can be written against the clean single-hop
abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.primitives.bgi_broadcast import bgi_broadcast, default_broadcast_epochs
from repro.primitives.decay import decay_slots
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace

#: Virtual-channel observations.
SILENT = 0
BUSY = 1


@dataclass
class CdRoundResult:
    """Outcome of one emulated virtual round.

    ``observation[v]`` is ``BUSY`` if node ``v`` heard (or sent) the
    wave, else ``SILENT``.  ``consistent`` says whether all nodes agree —
    the w.h.p. event, measured rather than assumed.
    """

    rounds: int
    observation: np.ndarray
    any_transmitter: bool
    consistent: bool


class EmulatedCdChannel:
    """A single-hop CD channel emulated on a multi-hop radio network.

    Parameters
    ----------
    network:
        The underlying multi-hop radio network.
    rng:
        Randomness source for the Decay waves.
    epochs_per_round:
        BGI epoch budget per virtual round; defaults to the
        ``O(D + log n)`` budget.

    Notes
    -----
    ``rounds_used`` accumulates the real (multi-hop) rounds spent, so an
    algorithm written against the virtual channel can still report its
    true cost on the radio network.
    """

    def __init__(
        self,
        network: RadioNetwork,
        rng: np.random.Generator,
        epochs_per_round: Optional[int] = None,
        trace: Optional[RoundTrace] = None,
    ):
        self.network = network
        self.rng = rng
        self.epochs_per_round = (
            epochs_per_round
            if epochs_per_round is not None
            else default_broadcast_epochs(network)
        )
        self.trace = trace
        self.rounds_used = 0
        self.virtual_rounds = 0

    @property
    def rounds_per_virtual_round(self) -> int:
        """Fixed real-round cost of one virtual round."""
        return self.epochs_per_round * decay_slots(self.network.max_degree)

    def virtual_round(self, transmitters: Iterable[int]) -> CdRoundResult:
        """Emulate one round of the virtual CD channel.

        ``transmitters`` are the nodes that transmit on the virtual
        channel this round (their 1-bit signal is flooded).  Every node
        observes ``BUSY``/``SILENT``; the cost in real rounds is fixed
        regardless of participation (silence is information).
        """
        sources = sorted(set(int(t) for t in transmitters))
        self.virtual_rounds += 1
        n = self.network.n

        if not sources:
            self.rounds_used += self.rounds_per_virtual_round
            return CdRoundResult(
                rounds=self.rounds_per_virtual_round,
                observation=np.zeros(n, dtype=np.int64),
                any_transmitter=False,
                consistent=True,
            )

        wave = bgi_broadcast(
            self.network,
            sources,
            self.rng,
            message=1,
            epochs=self.epochs_per_round,
            stop_early=False,
            trace=self.trace,
            round_offset=self.rounds_used,
        )
        self.rounds_used += wave.rounds
        observation = np.where(wave.informed, BUSY, SILENT)
        return CdRoundResult(
            rounds=wave.rounds,
            observation=observation,
            any_transmitter=True,
            consistent=bool(wave.informed.all()),
        )


def max_id_binary_search(
    channel: EmulatedCdChannel,
    candidates: Iterable[int],
    id_bound: int,
) -> List[int]:
    """Deterministic max-ID binary search over an emulated CD channel.

    Each node runs the textbook single-hop algorithm against its own
    observations: probe "anyone in the upper half?", narrow the interval.
    Returns each node's final belief about the maximum candidate ID
    (identical at all nodes whenever every wave was consistent).

    This is the engine behind :func:`repro.primitives.elect_leader`; it is
    exposed separately so other CD-channel algorithms can reuse the
    pattern.
    """
    import math

    candidate_set = set(int(c) for c in candidates)
    n = channel.network.n
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, id_bound, dtype=np.int64)

    num_probes = max(1, math.ceil(math.log2(max(id_bound, 2))))
    for _ in range(num_probes):
        transmitters = []
        for c in candidate_set:
            mid = (lo[c] + hi[c] + 1) // 2
            if mid <= c < hi[c]:
                transmitters.append(c)
        result = channel.virtual_round(transmitters)
        mid = (lo + hi + 1) // 2
        active = mid < hi
        busy = active & (result.observation == BUSY)
        silent = active & ~busy
        lo[busy] = mid[busy]
        hi[silent] = mid[silent]
    return [int(x) for x in lo]
