"""Distributed BFS-tree construction (Theorem 1; protocol from BGI 1992).

The construction proceeds in ``D`` phases of ``O(log n)`` Decay epochs
(``O(log n log Δ)`` rounds per phase).  In phase ``d`` only the nodes that
already know they are at distance ``d`` from the root transmit construction
messages ``(sender_id, d)`` via Decay.  A node that first receives a
construction message adopts the sender as its BFS parent and sets its
distance to the sender's distance plus one; it then participates in the
next phase.  Nodes recognize phase boundaries from the global round
counter (phases have fixed length).

At the end every node knows its parent and its exact distance w.h.p.; the
result is validated against ground truth by
:func:`repro.topology.metrics.validate_bfs_tree` in tests and experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.primitives.decay import (
    decay_slots,
    decay_transmit_matrix,
    run_decay_epoch,
)
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class DistributedBfsResult:
    """Outcome of the distributed BFS construction.

    ``parent[root] == -1``; nodes that never joined keep parent -1 and
    distance -1 (a w.h.p. failure, reported honestly).
    """

    rounds: int
    parent: List[int]
    distance: List[int]
    phases: int
    epochs_per_phase: int
    complete: bool


def default_bfs_epochs(network: RadioNetwork, factor: float = 3.0) -> int:
    """Decay epochs per BFS phase: the Theorem 1 budget ``O(log n)``."""
    return max(1, math.ceil(factor * math.log2(max(network.n, 2))))


def build_distributed_bfs(
    network: RadioNetwork,
    root: int,
    rng: np.random.Generator,
    depth_bound: Optional[int] = None,
    epochs_per_phase: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
) -> DistributedBfsResult:
    """Run the layer-by-layer construction from ``root``.

    Parameters
    ----------
    depth_bound:
        The linear upper bound on ``D`` the nodes know; the protocol runs
        exactly this many phases.  Defaults to the true diameter.
    epochs_per_phase:
        Decay epochs per phase (``O(log n)``); defaults to
        :func:`default_bfs_epochs`.
    """
    n = network.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    if depth_bound is None:
        depth_bound = network.diameter
    if epochs_per_phase is None:
        epochs_per_phase = default_bfs_epochs(network)

    num_slots = decay_slots(network.max_degree)
    parent = np.full(n, -1, dtype=np.int64)
    distance = np.full(n, -1, dtype=np.int64)
    distance[root] = 0

    if getattr(network, "engine", None) == "columnar":
        return _build_bfs_columnar(
            network,
            rng,
            depth_bound,
            epochs_per_phase,
            num_slots,
            parent,
            distance,
            trace,
            round_offset,
        )

    rounds = 0
    phases_run = 0
    for phase in range(depth_bound):
        phases_run += 1
        frontier = np.nonzero(distance == phase)[0].tolist()
        if not frontier:
            # No node at this distance; the phase still elapses (nodes only
            # know the depth *bound*), but simulating silent epochs is
            # unnecessary — account for the rounds and move on.
            rounds += epochs_per_phase * num_slots
            continue

        def message_fn(node: int, slot: int, _phase: int = phase) -> Tuple[int, int]:
            return (node, _phase)

        for _ in range(epochs_per_phase):
            receptions = run_decay_epoch(
                network,
                frontier,
                message_fn,
                rng,
                num_slots=num_slots,
                trace=trace,
                round_offset=round_offset + rounds,
            )
            rounds += num_slots
            for slot_received in receptions:
                for receiver, payload in slot_received.items():
                    if not (isinstance(payload, tuple) and len(payload) == 2):
                        continue  # stray traffic (e.g. a forged ACK)
                    sender, sender_dist = payload
                    if distance[receiver] < 0:
                        parent[receiver] = sender
                        distance[receiver] = sender_dist + 1

    return DistributedBfsResult(
        rounds=rounds,
        parent=[int(p) for p in parent],
        distance=[int(d) for d in distance],
        phases=phases_run,
        epochs_per_phase=epochs_per_phase,
        complete=bool((distance >= 0).all()),
    )


def _build_bfs_columnar(
    network,
    rng: np.random.Generator,
    depth_bound: int,
    epochs_per_phase: int,
    num_slots: int,
    parent: np.ndarray,
    distance: np.ndarray,
    trace: Optional[RoundTrace],
    round_offset: int,
) -> DistributedBfsResult:
    """Vectorized layer-by-layer construction (columnar engine).

    The per-epoch coin flips come from one :func:`decay_transmit_matrix`
    draw — which consumes the exact stream the reference per-slot loop
    consumes, so honest columnar BFS is RNG-identical to the reference,
    not merely semantically equivalent.  On a bare
    :class:`RadioNetwork`, receptions flow through
    :meth:`RadioNetwork.resolve_round_vector` (receiver/sender arrays;
    no ``(sender, dist)`` tuples are ever materialized); fault wrappers
    get real per-slot dicts so their interference and transcripts are
    preserved.
    """
    rounds = 0
    phases_run = 0
    direct = (
        isinstance(network, RadioNetwork)
        and type(network).resolve_round is RadioNetwork.resolve_round
        and trace is None
    )
    for phase in range(depth_bound):
        phases_run += 1
        frontier = np.flatnonzero(distance == phase)
        if frontier.size == 0:
            # Same charged-but-not-simulated bookkeeping as the
            # reference loop: the phase elapses silently.
            rounds += epochs_per_phase * num_slots
            continue
        for _ in range(epochs_per_phase):
            coins = decay_transmit_matrix(frontier.size, rng, num_slots)
            for slot in range(num_slots):
                tx = frontier[coins[slot]]
                if direct:
                    receivers, senders = network.resolve_round_vector(tx)
                    fresh = distance[receivers] < 0
                    adopters = receivers[fresh]
                    parent[adopters] = senders[fresh]
                    distance[adopters] = phase + 1
                else:
                    transmissions = {
                        int(t): (int(t), phase) for t in tx
                    }
                    received = network.resolve_round(transmissions)
                    if trace is not None:
                        trace.observe(
                            round_offset + rounds + slot,
                            transmissions,
                            received,
                        )
                    for receiver, payload in received.items():
                        if not (
                            isinstance(payload, tuple) and len(payload) == 2
                        ):
                            continue  # stray traffic (e.g. a forged ACK)
                        sender, sender_dist = payload
                        if distance[receiver] < 0:
                            parent[receiver] = sender
                            distance[receiver] = sender_dist + 1
            rounds += num_slots

    return DistributedBfsResult(
        rounds=rounds,
        parent=[int(p) for p in parent],
        distance=[int(d) for d in distance],
        phases=phases_run,
        epochs_per_phase=epochs_per_phase,
        complete=bool((distance >= 0).all()),
    )
