"""Leader election by binary search over the ID space (Fact 1).

The paper elects, among the nodes holding at least one packet, the one with
the highest ID.  The mechanism: a deterministic binary search over the ID
space, where each probe ("is there a candidate with ID in the upper half of
my current range?") is answered by *emulating* one round of a single-hop
collision-detection channel on the multi-hop network — concretely, every
candidate in the upper half initiates a BGI broadcast wave of a 1-bit
signal, and every node observes whether the signal arrived.  Silence is
information: a probe with no sources costs the same fixed number of rounds.

Each probe costs ``O((D + log n) log Δ)`` rounds and there are
``⌈log2 id_bound⌉`` probes, matching Fact 1's
``O((D + log n) log n log Δ)`` total.

Faithfulness note: every node maintains its *own* binary-search interval,
updated only from its own observation of each wave.  If a wave fails to
reach some node (a low-probability event), that node's interval diverges —
the result records this honestly via ``claimants``/``elected_correctly``
instead of papering over it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.primitives.bgi_broadcast import default_broadcast_epochs
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class LeaderElectionResult:
    """Outcome of the election.

    Attributes
    ----------
    rounds:
        Total rounds consumed.
    claimants:
        Candidates whose final interval pinpoints their own ID — the nodes
        that will act as root.  Correct executions have exactly one.
    belief_by_node:
        Each node's final estimate of the leader ID (-1 for nodes that
        slept through the whole election; they do not need the leader ID).
    true_leader:
        Ground truth (max candidate ID), for validation.
    elected_correctly:
        Exactly one claimant, and it is the true leader.
    probes:
        Number of binary-search probes executed.
    """

    rounds: int
    claimants: List[int]
    belief_by_node: List[int]
    true_leader: int
    elected_correctly: bool
    probes: int


def elect_leader(
    network: RadioNetwork,
    candidates: Iterable[int],
    rng: np.random.Generator,
    id_bound: Optional[int] = None,
    epochs_per_probe: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    node_ids: Optional[Sequence[int]] = None,
) -> LeaderElectionResult:
    """Elect the candidate with the maximum ID.

    Parameters
    ----------
    candidates:
        Node *indices* that compete (the packet holders).  Must be
        non-empty.
    id_bound:
        Exclusive upper bound on IDs known to all nodes (the paper's
        polynomial bound on ``n``).  Defaults to the maximum ID + 1.
    epochs_per_probe:
        BGI epoch budget per binary-search probe; defaults to the
        ``O(D + log n)`` budget.
    node_ids:
        The paper's nodes carry arbitrary distinct IDs from a polynomial
        range, not necessarily ``0..n-1``.  ``node_ids[v]`` is node
        ``v``'s ID; defaults to the identity.  The binary search runs
        over the ID space, so its probe count is ``⌈log2 id_bound⌉``.

    Returns
    -------
    LeaderElectionResult
        ``claimants``/``leader fields`` are node *indices*;
        ``belief_by_node`` holds believed leader *IDs*.
    """
    candidate_set = set(int(c) for c in candidates)
    if not candidate_set:
        raise ValueError("leader election requires at least one candidate")
    n = network.n
    if any(not 0 <= c < n for c in candidate_set):
        raise ValueError("candidate index out of range")
    if node_ids is None:
        node_ids = list(range(n))
    else:
        node_ids = [int(i) for i in node_ids]
        if len(node_ids) != n:
            raise ValueError("node_ids must have one entry per node")
        if len(set(node_ids)) != n:
            raise ValueError("node IDs must be distinct")
        if min(node_ids) < 0:
            raise ValueError("node IDs must be non-negative")
    if id_bound is None:
        id_bound = max(node_ids) + 1
    if any(node_ids[c] >= id_bound for c in candidate_set):
        raise ValueError("candidate ID exceeds id_bound")
    if epochs_per_probe is None:
        epochs_per_probe = default_broadcast_epochs(network)

    true_leader = max(candidate_set, key=lambda c: node_ids[c])

    # Run the textbook single-hop binary search over the emulated
    # collision-detection channel (BGI 1991); the channel accounts for
    # the real multi-hop rounds, including all-silent probes.
    from repro.primitives.cd_channel import BUSY, EmulatedCdChannel

    channel = EmulatedCdChannel(
        network, rng, epochs_per_round=epochs_per_probe, trace=trace
    )

    # Per-node binary-search state: the interval [lo, hi) of the ID space
    # each node still considers possible for the maximum candidate ID.
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, id_bound, dtype=np.int64)
    heard_any = np.zeros(n, dtype=bool)

    num_probes = max(1, math.ceil(math.log2(max(id_bound, 2))))
    for _ in range(num_probes):
        # Every candidate uses *its own* interval to decide participation:
        # it signals iff its ID lies in the upper half of its interval.
        sources = []
        for c in candidate_set:
            mid = (lo[c] + hi[c] + 1) // 2
            if mid <= node_ids[c] < hi[c]:
                sources.append(c)

        result = channel.virtual_round(sources)
        # Whole-network interval update (deterministic, no RNG): nodes
        # whose interval still spans more than one ID narrow it by the
        # half their observation selects.
        mid = (lo + hi + 1) // 2
        active = mid < hi
        busy = active & (result.observation == BUSY)
        silent = active & ~busy
        lo[busy] = mid[busy]
        hi[silent] = mid[silent]
        heard_any |= busy

    # A candidate claims leadership iff its interval singled out its own ID.
    claimants = sorted(
        c for c in candidate_set if lo[c] == node_ids[c]
    )
    belief_by_node = [
        int(lo[v]) if (heard_any[v] or v in candidate_set) else -1
        for v in range(n)
    ]
    return LeaderElectionResult(
        rounds=channel.rounds_used,
        claimants=claimants,
        belief_by_node=belief_by_node,
        true_leader=true_leader,
        elected_correctly=(claimants == [true_leader]),
        probes=channel.virtual_rounds,
    )
