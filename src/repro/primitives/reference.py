"""Reference per-node (message-passing) protocol implementations.

The library's production engines (``bgi_broadcast``, ``build_distributed_bfs``,
the stage engines) are centrally orchestrated for speed.  This module
implements the same protocols as genuine per-node state machines on the
generic :class:`repro.radio.Simulator`, for two purposes:

1. **cross-validation** — the test suite compares engine and reference
   behaviour on the same physics (they must be statistically
   indistinguishable);
2. **extensibility** — downstream users writing new protocols get
   idiomatic examples of the :class:`repro.radio.Node` API.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.primitives.decay import decay_slots
from repro.radio.network import RadioNetwork
from repro.radio.protocol import Node, ProtocolOutcome, Simulator
from repro.radio.rng import spawn_rngs


class DecayFloodNode(Node):
    """BGI broadcast as a per-node protocol.

    Informed nodes run Decay epochs forever (slot ``s`` of each epoch:
    transmit with probability ``2^-(s+1)``); a reception informs the node.
    """

    def __init__(
        self,
        node_id: int,
        num_slots: int,
        rng: np.random.Generator,
        informed: bool = False,
        message: object = 1,
    ):
        super().__init__(node_id)
        self.num_slots = num_slots
        self.rng = rng
        self.informed = informed
        self.message = message
        self.informed_at_round = 0 if informed else -1
        self.awake = True  # listening costs nothing in this model

    def act(self, round_index: int) -> Optional[object]:
        if not self.informed:
            return None
        slot = round_index % self.num_slots
        if self.rng.random() < 2.0 ** -(slot + 1):
            return self.message
        return None

    def on_receive(self, round_index: int, message: object) -> None:
        if not self.informed:
            self.informed = True
            self.informed_at_round = round_index
            self.message = message

    def is_done(self, round_index: int) -> bool:
        return self.informed


class BfsNode(Node):
    """Distributed BFS construction as a per-node protocol.

    Phases of ``epochs_per_phase`` Decay epochs; in phase ``d`` exactly
    the nodes with ``distance == d`` transmit ``(id, d)``; first reception
    assigns parent and distance.  Nodes derive the current phase from the
    global round counter, as in the paper.
    """

    def __init__(
        self,
        node_id: int,
        num_slots: int,
        epochs_per_phase: int,
        rng: np.random.Generator,
        is_root: bool = False,
    ):
        super().__init__(node_id)
        self.num_slots = num_slots
        self.rounds_per_phase = num_slots * epochs_per_phase
        self.rng = rng
        self.parent = -1
        self.distance = 0 if is_root else -1
        self.awake = True

    def act(self, round_index: int) -> Optional[object]:
        if self.distance < 0:
            return None
        phase = round_index // self.rounds_per_phase
        if phase != self.distance:
            return None
        slot = round_index % self.num_slots
        if self.rng.random() < 2.0 ** -(slot + 1):
            return (self.node_id, self.distance)
        return None

    def on_receive(self, round_index: int, message: object) -> None:
        sender, sender_distance = message
        if self.distance < 0:
            self.parent = sender
            self.distance = sender_distance + 1

    def is_done(self, round_index: int) -> bool:
        return self.distance >= 0


def reference_broadcast(
    network: RadioNetwork,
    sources: List[int],
    seed: int,
    max_rounds: int = 100_000,
) -> ProtocolOutcome:
    """Run the reference (Node-based) BGI broadcast until everyone knows."""
    num_slots = decay_slots(network.max_degree)
    rngs = spawn_rngs(np.random.default_rng(seed), network.n)
    nodes = [
        DecayFloodNode(v, num_slots, rngs[v], informed=v in set(sources))
        for v in range(network.n)
    ]
    return Simulator(network, nodes).run(max_rounds=max_rounds)


def reference_bfs(
    network: RadioNetwork,
    root: int,
    seed: int,
    epochs_per_phase: Optional[int] = None,
    depth_bound: Optional[int] = None,
) -> Tuple[List[int], List[int], int]:
    """Run the reference (Node-based) BFS; returns (parent, distance, rounds)."""
    from repro.primitives.bfs import default_bfs_epochs

    if epochs_per_phase is None:
        epochs_per_phase = default_bfs_epochs(network)
    if depth_bound is None:
        depth_bound = network.diameter

    num_slots = decay_slots(network.max_degree)
    rngs = spawn_rngs(np.random.default_rng(seed), network.n)
    nodes = [
        BfsNode(v, num_slots, epochs_per_phase, rngs[v], is_root=(v == root))
        for v in range(network.n)
    ]
    total_rounds = depth_bound * epochs_per_phase * num_slots
    sim = Simulator(network, nodes)
    sim.run(max_rounds=total_rounds, stop_when=lambda: False)
    return (
        [node.parent for node in nodes],
        [node.distance for node in nodes],
        total_rounds,
    )
