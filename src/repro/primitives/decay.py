"""The Decay procedure (Bar-Yehuda, Goldreich, Itai 1992).

One *epoch* of Decay consists of ``⌈log2 Δ⌉ + 1`` slots; in slot
``s = 1, 2, ...`` every participating node transmits independently with
probability ``2^{-s}`` (this is the variant the paper's ``FORWARD``
sub-routine specifies).  The classic guarantee: a node with at least one
and at most Δ participating neighbors receives a message during the epoch
with probability bounded below by a positive constant (≈ 1/(2e)).

The classic 1992 formulation (`variant="classic"`) has each node transmit
in a prefix of slots of geometric length; both variants enjoy the constant
success probability and both are exposed for the E12 experiment.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace

#: A message factory: called as ``f(node_id, slot_index)`` each time the node
#: actually transmits, so coded schemes can generate a fresh message per
#: transmission (as FORWARD requires).
MessageFn = Callable[[int, int], object]


def decay_slots(max_degree: int) -> int:
    """Number of slots per Decay epoch for a given Δ: ``⌈log2 Δ⌉ + 1``.

    The ``+1`` slot (probability 1/2 down to ``2^{-(⌈log Δ⌉+1)}``) covers the
    boundary case of exactly Δ competing neighbors; it only changes constants.
    """
    if max_degree < 1:
        raise ValueError("max_degree must be >= 1")
    return max(1, math.ceil(math.log2(max_degree))) + 1


def transmission_probabilities(num_slots: int) -> List[float]:
    """The per-slot transmission probabilities 1/2, 1/4, ..., 2^-num_slots."""
    return [2.0 ** -(s + 1) for s in range(num_slots)]


def decay_transmit_matrix(
    num_participants: int,
    rng: np.random.Generator,
    num_slots: int,
    variant: str = "independent",
) -> np.ndarray:
    """Whole-epoch transmit decisions as a ``(num_slots, m)`` bool matrix.

    ``matrix[s, i]`` says whether participant ``i`` transmits in slot
    ``s``.  The draws consume the *identical* RNG stream that
    :func:`run_decay_epoch` consumes for the same participant count:
    ``rng.random((num_slots, m))`` fills rows sequentially (C order), so
    row ``s`` holds exactly the ``m`` doubles the per-slot
    ``rng.random(m)`` call would have drawn, and the classic variant's
    geometric stops are drawn once up front in both.  The columnar stage
    drivers build their batched schedules from this matrix.
    """
    m = int(num_participants)
    if variant == "independent":
        if m == 0:
            return np.zeros((num_slots, 0), dtype=bool)
        probs = np.array(
            transmission_probabilities(num_slots), dtype=np.float64
        )
        return rng.random((num_slots, m)) < probs[:, None]
    if variant == "classic":
        if m == 0:
            return np.zeros((num_slots, 0), dtype=bool)
        stops = rng.geometric(0.5, size=m)
        return np.arange(num_slots)[:, None] < stops[None, :]
    raise ValueError(f"unknown Decay variant {variant!r}")


def run_decay_epoch(
    network: RadioNetwork,
    participants: Sequence[int],
    message_fn: MessageFn,
    rng: np.random.Generator,
    num_slots: Optional[int] = None,
    variant: str = "independent",
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
) -> List[Dict[int, object]]:
    """Run one Decay epoch.

    Parameters
    ----------
    participants:
        Nodes that hold the message(s) and contend for the channel.
    message_fn:
        Called per actual transmission to obtain the message to send.
    num_slots:
        Slots in the epoch; defaults to :func:`decay_slots` of the network's Δ.
    variant:
        ``"independent"`` — transmit in slot ``s`` independently with
        probability ``2^{-s}`` (the paper's FORWARD formulation);
        ``"classic"`` — transmit in slots ``1..X`` where ``X`` is geometric
        (the original 1992 "decay" shape).

    Returns
    -------
    list of dict
        One ``receiver -> message`` map per slot.
    """
    if num_slots is None:
        num_slots = decay_slots(network.max_degree)
    participants = list(participants)
    receptions: List[Dict[int, object]] = []

    if variant == "classic":
        # Each node transmits in slots 0..stop-1 where stop is geometric,
        # capped at num_slots.
        stops = rng.geometric(0.5, size=len(participants)) if participants else []

    for slot in range(num_slots):
        transmissions: Dict[int, object] = {}
        if variant == "independent":
            p = 2.0 ** -(slot + 1)
            if participants:
                coins = rng.random(len(participants)) < p
                for i, node in enumerate(participants):
                    if coins[i]:
                        transmissions[node] = message_fn(node, slot)
        elif variant == "classic":
            for i, node in enumerate(participants):
                if slot < stops[i]:
                    transmissions[node] = message_fn(node, slot)
        else:
            raise ValueError(f"unknown Decay variant {variant!r}")

        received = network.resolve_round(transmissions)
        if trace is not None:
            trace.observe(round_offset + slot, transmissions, received)
        receptions.append(received)

    return receptions


def epoch_success_probability_lower_bound() -> float:
    """The constant from the BGI analysis: per-epoch reception probability
    for a node with 1..Δ participating neighbors is at least ~1/(2e).

    Exposed so experiments can compare measurements against the analytical
    constant.
    """
    return 1.0 / (2.0 * math.e)
