"""Classic randomized radio-network primitives the paper builds on.

- :mod:`repro.primitives.decay` — the Decay procedure of Bar-Yehuda,
  Goldreich and Itai (1992): a ``⌈log Δ⌉``-slot schedule with geometrically
  decreasing transmission probabilities that delivers to any node with
  between 1 and Δ transmitting neighbors with constant probability.
- :mod:`repro.primitives.bgi_broadcast` — the BGI randomized broadcast
  protocol (single message, possibly many sources), used for the alarm
  epoch and, as a wave, for the collision-detection-channel emulation.
- :mod:`repro.primitives.leader_election` — max-ID election by binary
  search over the ID space on the emulated channel (Fact 1 in the paper).
- :mod:`repro.primitives.bfs` — the distributed layer-by-layer BFS tree
  construction (Theorem 1 in the paper).
"""

from repro.primitives.bfs import DistributedBfsResult, build_distributed_bfs
from repro.primitives.bgi_broadcast import BroadcastResult, bgi_broadcast
from repro.primitives.cd_channel import (
    BUSY,
    SILENT,
    CdRoundResult,
    EmulatedCdChannel,
    max_id_binary_search,
)
from repro.primitives.decay import (
    decay_slots,
    run_decay_epoch,
    transmission_probabilities,
)
from repro.primitives.leader_election import LeaderElectionResult, elect_leader
from repro.primitives.reference import (
    BfsNode,
    DecayFloodNode,
    reference_bfs,
    reference_broadcast,
)

__all__ = [
    "BUSY",
    "BfsNode",
    "BroadcastResult",
    "CdRoundResult",
    "DecayFloodNode",
    "DistributedBfsResult",
    "EmulatedCdChannel",
    "LeaderElectionResult",
    "SILENT",
    "bgi_broadcast",
    "build_distributed_bfs",
    "decay_slots",
    "elect_leader",
    "max_id_binary_search",
    "reference_bfs",
    "reference_broadcast",
    "run_decay_epoch",
    "transmission_probabilities",
]
