"""A probabilistic abstract MAC layer over the radio model.

The service per node: ``bcast(node, message)`` enqueues a message.  Each
node transmits at most one *active* message at a time; while active, the
node participates in the shared Decay schedule (slot ``s`` of each epoch:
transmit with probability ``2^-(s+1)``) for a fixed **ack window** of
``ack_epochs`` epochs, after which the layer issues an ``ack`` event to
the sender and activates its next queued message.

Guarantees (probabilistic versions of the abstract MAC layer contract):

- *receive*: during the ack window each neighbor hears the message with
  probability ``1 - (1-q)^ack_epochs`` where ``q`` is the per-epoch Decay
  success rate (≥ 1/(2e) for ≤ Δ contenders); the default window of
  ``Θ(log n)`` epochs makes delivery to all neighbors w.h.p.
- *progress*: a node with ≥ 1 active neighbor receives *some* message
  within ``O(logΔ)`` rounds with constant probability (Decay's property).

The ack is *time-triggered*, as in the radio model it must be — there is
no channel feedback; the window is sized so the w.h.p. contract holds.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.primitives.decay import decay_slots
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass(frozen=True)
class MacEvent:
    """An event delivered by the layer at the end of a round.

    ``kind`` is ``"receive"`` (at ``node``, carrying ``message`` from a
    neighbor) or ``"ack"`` (at ``node``, its own ``message``'s ack window
    elapsed).
    """

    kind: str
    node: int
    message: object


class AbstractMacLayer:
    """The layer: per-node bcast queues + the shared Decay schedule.

    Parameters
    ----------
    ack_epochs:
        Decay epochs per ack window; defaults to ``⌈2·Δ·log2 n⌉``.  The
        ``Δ`` factor is intrinsic: a *specific* contender among ``t``
        succeeds in an epoch with probability only ``Θ(1/t)`` (someone
        succeeds with constant probability, but fairness splits it), so
        delivering a specific message w.h.p. costs ``Θ(Δ·log n)`` epochs —
        the very serialization that puts the ``kΔ`` term in the flooding
        bound and that the paper's coded pipeline avoids.
    """

    def __init__(
        self,
        network: RadioNetwork,
        rng: np.random.Generator,
        ack_epochs: Optional[int] = None,
        trace: Optional[RoundTrace] = None,
    ):
        self.network = network
        self.rng = rng
        self.num_slots = decay_slots(network.max_degree)
        if ack_epochs is None:
            ack_epochs = max(
                1,
                math.ceil(
                    2 * network.max_degree * math.log2(max(network.n, 2))
                ),
            )
        self.ack_epochs = ack_epochs
        self.ack_window_rounds = ack_epochs * self.num_slots
        self.trace = trace

        self._queues: List[Deque[object]] = [deque() for _ in range(network.n)]
        # node -> (active message, rounds remaining in its ack window)
        self._active: Dict[int, Tuple[object, int]] = {}
        self.round_index = 0

    # ------------------------------------------------------------------

    def bcast(self, node: int, message: object) -> None:
        """Enqueue a message for broadcast by ``node`` to its neighbors."""
        if not 0 <= node < self.network.n:
            raise ValueError(f"node {node} out of range")
        if node in self._active:
            self._queues[node].append(message)
        else:
            self._active[node] = (message, self.ack_window_rounds)

    def pending(self, node: int) -> int:
        """Messages queued or active at ``node``."""
        return len(self._queues[node]) + (1 if node in self._active else 0)

    @property
    def busy(self) -> bool:
        return bool(self._active)

    # ------------------------------------------------------------------

    def step(self) -> List[MacEvent]:
        """Advance one round; returns this round's receive/ack events."""
        slot = self.round_index % self.num_slots
        p_tx = 2.0 ** -(slot + 1)

        transmissions: Dict[int, object] = {}
        if self._active:
            senders = list(self._active.keys())
            coins = self.rng.random(len(senders)) < p_tx
            for sender, hot in zip(senders, coins):
                if hot:
                    transmissions[sender] = self._active[sender][0]

        received = self.network.resolve_round(transmissions)
        if self.trace is not None:
            self.trace.observe(self.round_index, transmissions, received)

        events: List[MacEvent] = [
            MacEvent(kind="receive", node=receiver, message=message)
            for receiver, message in received.items()
        ]

        # Tick down every active ack window (windows are wall-clock).
        expired: List[int] = []
        for sender, (message, remaining) in self._active.items():
            remaining -= 1
            if remaining <= 0:
                expired.append(sender)
                events.append(MacEvent(kind="ack", node=sender, message=message))
            else:
                self._active[sender] = (message, remaining)
        for sender in expired:
            message = self._active.pop(sender)[0]
            if self._queues[sender]:
                self._active[sender] = (
                    self._queues[sender].popleft(),
                    self.ack_window_rounds,
                )

        self.round_index += 1
        return events
