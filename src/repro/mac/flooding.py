"""Multiple-message broadcast by flooding over the abstract MAC layer.

The modular algorithm from the paper's reference [16]: every node, upon
first learning a packet (initially, or via a MAC receive event), hands it
to the MAC layer for broadcast.  The layer's ack windows serialize each
node's packets, so a node relays its backlog one packet per
``O(log n·logΔ)`` rounds — whence the ``O((kΔ log n + D)·logΔ)`` bound
the paper quotes: in the worst neighborhood, ``Δ`` senders each relay up
to ``k`` packets through the same receiver.

Used as the third literature comparison point in experiment E16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.coding.packets import Packet
from repro.mac.layer import AbstractMacLayer
from repro.radio.errors import SimulationLimitExceeded
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class MacFloodResult:
    """Outcome of a MAC-layer flooding run."""

    rounds: int
    complete: bool
    k: int
    ack_window_rounds: int
    receive_events: int
    duplicate_receives: int

    @property
    def amortized_rounds_per_packet(self) -> float:
        return self.rounds / max(self.k, 1)


def mac_flood_broadcast(
    network: RadioNetwork,
    packets: Sequence[Packet],
    rng: np.random.Generator,
    ack_epochs: Optional[int] = None,
    max_rounds: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    raise_on_budget: bool = False,
) -> MacFloodResult:
    """Flood all packets to all nodes over the abstract MAC layer.

    Parameters
    ----------
    max_rounds:
        Round budget; defaults to a generous multiple of the
        ``(kΔ log n + D)·logΔ`` bound.
    """
    n = network.n
    k = len(packets)
    if k == 0:
        return MacFloodResult(0, True, 0, 0, 0, 0)

    layer = AbstractMacLayer(network, rng, ack_epochs=ack_epochs, trace=trace)
    if max_rounds is None:
        ln = math.log2(max(n, 2))
        ld = max(1.0, math.log2(max(network.max_degree, 2)))
        bound = (k * network.max_degree * ln + network.diameter) * ld
        max_rounds = max(1000, math.ceil(12 * bound))

    knows: List[Set[int]] = [set() for _ in range(n)]
    for p in packets:
        if not 0 <= p.origin < n:
            raise ValueError(f"packet {p.pid} origin out of range")
        if p.pid not in knows[p.origin]:
            knows[p.origin].add(p.pid)
            layer.bcast(p.origin, p)

    total_known = sum(len(s) for s in knows)
    target = n * len({p.pid for p in packets})
    receive_events = 0
    duplicates = 0
    rounds = 0

    while total_known < target and rounds < max_rounds:
        events = layer.step()
        rounds += 1
        for event in events:
            if event.kind != "receive":
                continue
            receive_events += 1
            packet: Packet = event.message
            if packet.pid in knows[event.node]:
                duplicates += 1
            else:
                knows[event.node].add(packet.pid)
                total_known += 1
                layer.bcast(event.node, packet)

    complete = total_known >= target
    if not complete and raise_on_budget:
        raise SimulationLimitExceeded(
            f"MAC flooding incomplete after {rounds} rounds",
            rounds_used=rounds,
        )
    return MacFloodResult(
        rounds=rounds,
        complete=complete,
        k=k,
        ack_window_rounds=layer.ack_window_rounds,
        receive_events=receive_events,
        duplicate_receives=duplicates,
    )
