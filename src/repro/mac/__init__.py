"""Abstract MAC layer and MAC-layer flooding (the paper's reference [16]).

The paper's related work cites Khabbazian, Kuhn, Kowalski and Lynch
(DIALM-POMC 2010): a *modular* approach where broadcast algorithms are
written against an **abstract MAC layer** — a service that accepts
``bcast(message)`` requests and guarantees (probabilistically, when
implemented over the collision-prone radio model) that

- every neighbor *receives* the message within an acknowledgment window
  ``f_ack`` (after which the sender gets an ``ack`` event), and
- a node with at least one active neighboring sender receives *some*
  message within a progress window ``f_prog``.

Their multiple-message broadcast is then simple flooding over this layer
and runs in ``O((kΔ log n + D)·logΔ)`` rounds — the ``Δ`` factor being
the price of the layer's per-neighborhood serialization, which this
paper's coded pipeline avoids.  Both are implemented here:

- :class:`repro.mac.layer.AbstractMacLayer` — the layer over the radio
  model (Decay-scheduled, explicit ack windows);
- :func:`repro.mac.flooding.mac_flood_broadcast` — flooding over the
  layer, used as the literature's third comparison point (experiment
  E16).
"""

from repro.mac.flooding import MacFloodResult, mac_flood_broadcast
from repro.mac.layer import AbstractMacLayer, MacEvent

__all__ = [
    "AbstractMacLayer",
    "MacEvent",
    "MacFloodResult",
    "mac_flood_broadcast",
]
