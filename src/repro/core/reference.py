"""Per-node reference implementations of the Stage-3 gather procedure and
the Stage-4 dissemination pipeline.

The Stage-3 engine (:func:`repro.core.collection.run_gather_procedure`) is
centrally orchestrated; this module implements the *same* protocol as
genuine per-node state machines on the generic
:class:`repro.radio.Simulator`.  Because the gather procedure contains no
randomness beyond the launch plan, the two implementations must produce
**identical** collected/acknowledged sets for identical launches — the
strongest possible cross-validation, asserted over random graphs in
``tests/test_gather_crossvalidation.py``.

Tie-breaking rules mirrored from the engine:

- one transmission per node per round; a relayed in-flight copy wins over
  a scheduled launch; among launches, the earlier entry in the node's
  launch plan wins;
- forwarding stops after the window's first part (round ``window + D``);
- the root acknowledges packets in arrival order, 3 rounds apart, along
  the first-recorded reverse path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.collection import GatherEpochResult
from repro.radio.network import RadioNetwork
from repro.radio.protocol import Node, Simulator


class _GatherNode(Node):
    """One node of the per-node gather protocol.

    All state is node-local: the launch plan for its own packets, the
    relay duty received last round, the reverse-path memory, and (at the
    root) the arrival log driving the ACK schedule.
    """

    def __init__(
        self,
        node_id: int,
        parent: int,
        is_root: bool,
        t1: int,
        total: int,
    ):
        super().__init__(node_id)
        self.parent = parent
        self.is_root = is_root
        self.t1 = t1
        self.total = total
        self.awake = True

        self.launch_plan: Dict[int, List[int]] = {}  # round -> [pid, ...]
        self.relay_duty: Optional[int] = None        # pid to forward now
        self.ack_duty: Optional[Tuple[int, int]] = None  # (pid, child)
        self.came_from: Dict[int, int] = {}
        self.my_pids: Set[int] = set()
        self.acked: Set[int] = set()
        # root only:
        self.collected: List[int] = []
        self.collected_set: Set[int] = set()

    def act(self, round_index: int):
        t = round_index + 1  # protocol rounds are 1-based
        if t <= self.t1:
            # forwarding part: relay duty wins over launches
            if self.relay_duty is not None:
                pid = self.relay_duty
                self.relay_duty = None
                return ("pkt", pid, self.parent, self.node_id)
            launches = self.launch_plan.pop(t, None)
            if launches:
                return ("pkt", launches[0], self.parent, self.node_id)
            return None

        # acknowledgment part
        self.relay_duty = None  # window closed; drop any stray duty
        if self.is_root:
            offset = t - self.t1 - 1
            if offset % 3 == 0:
                index = offset // 3
                if index < len(self.collected):
                    pid = self.collected[index]
                    return ("ack", pid, self.came_from[pid], self.node_id)
            return None
        if self.ack_duty is not None:
            pid, child = self.ack_duty
            self.ack_duty = None
            return ("ack", pid, child, self.node_id)
        return None

    def on_receive(self, round_index: int, message):
        kind, pid, dest, sender = message
        if dest != self.node_id:
            return  # overheard
        t = round_index + 1
        if kind == "pkt":
            if pid not in self.came_from:
                self.came_from[pid] = sender
            if self.is_root:
                if (
                    pid not in self.collected_set
                ):
                    self.collected_set.add(pid)
                    self.collected.append(pid)
            elif t + 1 <= self.t1:
                self.relay_duty = pid
            return
        # ack
        if pid in self.my_pids:
            self.acked.add(pid)
        elif pid in self.came_from and t + 1 <= self.total:
            self.ack_duty = (pid, self.came_from[pid])


def reference_gather_procedure(
    network: RadioNetwork,
    parent: Sequence[int],
    root: int,
    launches: Sequence[Tuple[int, int, int]],
    window: int,
    depth_bound: int,
    already_collected: Optional[Set[int]] = None,
) -> GatherEpochResult:
    """Run the per-node gather protocol; same contract as
    :func:`repro.core.collection.run_gather_procedure`."""
    t1 = window + depth_bound
    total = t1 + 3 * t1 + depth_bound

    nodes = [
        _GatherNode(v, parent[v], v == root, t1, total)
        for v in range(network.n)
    ]

    for pid, origin, launch_round in launches:
        if origin == root:
            raise ValueError("root packets are collected, not launched")
        if not 1 <= launch_round <= window:
            raise ValueError("launch round outside the window")
        nodes[origin].launch_plan.setdefault(launch_round, []).append(pid)
        nodes[origin].my_pids.add(pid)

    sim = Simulator(network, nodes)
    for _ in range(total):
        sim.step()

    root_node = nodes[root]
    acked: Set[int] = set()
    for node in nodes:
        acked |= node.acked
    # Diagnostic counters (launches / lost_to_collisions) are an engine
    # concern; the cross-validated protocol outcomes are collected/acked.
    return GatherEpochResult(
        rounds=total,
        collected=list(root_node.collected),
        acked=acked,
        launches=0,
        lost_to_collisions=0,
    )


class _ForwardNode(Node):
    """One node of the per-node coded dissemination (single group).

    Holds the group (encoder set) or collects coded messages into an
    incremental decoder during its layer's receiving phase; promoted to
    transmitter once decoded.  Phase membership is derived from the
    global round counter, exactly as in the paper.
    """

    def __init__(self, node_id, layer, group_size, rng, num_slots,
                 phase_rounds, ecc):
        from repro.coding.rlnc import GroupDecoder

        super().__init__(node_id)
        self.layer = layer
        self.rng = rng
        self.num_slots = num_slots
        self.phase_rounds = phase_rounds
        self.ecc = ecc
        self.awake = True
        self.encoder = None
        self.decoder = GroupDecoder(0, group_size)
        self.plain_seen = {}

    @property
    def has_group(self):
        return self.encoder is not None

    def _phase(self, round_index):
        """1-based phase of the single-group pipeline."""
        return round_index // self.phase_rounds + 1

    def act(self, round_index):
        phase = self._phase(round_index)
        slot_in_phase = round_index % self.phase_rounds
        if self.layer == 0:
            # root: plain one-by-one during phase 1
            if phase == 1 and self.encoder is not None:
                packets = self.encoder.packets
                if slot_in_phase < len(packets):
                    pkt = packets[slot_in_phase]
                    return ("plain", slot_in_phase, pkt.payload, len(packets))
            return None
        # FORWARD: transmit while my layer is the sender layer (phase =
        # layer + 1) and I hold the group
        if self.encoder is None or phase != self.layer + 1:
            return None
        slot = slot_in_phase % self.num_slots
        if self.rng.random() < 2.0 ** -(slot + 1):
            return ("coded", self.encoder.encode(self.rng))
        return None

    def on_receive(self, round_index, message):
        if self.encoder is not None or self.layer == 0:
            return
        phase = self._phase(round_index)
        if phase != self.layer:
            return  # strict mode: only my scheduled receiving phase
        if message[0] == "plain":
            _, idx, payload, gs = message
            self.plain_seen[idx] = payload
            if len(self.plain_seen) == gs:
                self._promote_plain(gs)
        else:
            self.decoder.absorb(message[1])

    def _promote_plain(self, gs):
        from repro.coding.packets import Packet
        from repro.coding.rlnc import SubsetXorEncoder

        packets = [
            Packet(pid=i, origin=0, payload=self.plain_seen[i],
                   size_bits=max(p.bit_length(), 1) if (p := self.plain_seen[i]) else 1)
            for i in range(gs)
        ]
        self.encoder = SubsetXorEncoder(0, packets)

    def finish_phase(self):
        """Phase-end decode attempt (mirrors the engine's try_complete)."""
        from repro.coding.packets import Packet
        from repro.coding.rlnc import SubsetXorEncoder

        if self.encoder is None and self.decoder.is_complete:
            payloads = self.decoder.decode()
            packets = [
                Packet(pid=i, origin=0, payload=p,
                       size_bits=max(p.bit_length(), 1))
                for i, p in enumerate(payloads)
            ]
            self.encoder = SubsetXorEncoder(0, packets)


def reference_forward_pipeline(
    network: RadioNetwork,
    distance: Sequence[int],
    root: int,
    packets,
    forward_epochs: int,
    seed: int,
):
    """Per-node reference of the single-group dissemination pipeline.

    Runs one group (all ``packets``) down the BFS layers in strict mode:
    phase 1 = root plain, phase d = FORWARD from layer d-1 to layer d.
    Returns a boolean list: which nodes hold the group at the end.

    Cross-validated statistically against
    :func:`repro.core.dissemination.run_dissemination_stage` in
    ``tests/test_forward_crossvalidation.py``.
    """
    from repro.coding.rlnc import SubsetXorEncoder
    from repro.primitives.decay import decay_slots
    from repro.radio.rng import spawn_rngs

    n = network.n
    ecc = max(int(d) for d in distance)
    num_slots = decay_slots(network.max_degree)
    phase_rounds = max(len(packets), forward_epochs * num_slots)

    rngs = spawn_rngs(__import__("numpy").random.default_rng(seed), n)
    nodes = []
    for v in range(n):
        node = _ForwardNode(
            v, int(distance[v]), len(packets), rngs[v], num_slots,
            phase_rounds, ecc,
        )
        if v == root:
            node.encoder = SubsetXorEncoder(0, list(packets))
        nodes.append(node)

    sim = Simulator(network, nodes)
    for phase in range(1, ecc + 1):
        for _ in range(phase_rounds):
            sim.step()
        for node in nodes:
            if node.layer == phase:
                node.finish_phase()
    return [node.has_group for node in nodes]
