"""Stage 4: pipelined dissemination with network coding (FORWARD, Lemma 6/7).

The root partitions the ``k`` collected packets into ``g = ⌈k/⌈log n⌉⌉``
groups of up to ``⌈log n⌉`` packets.  Group ``j`` starts ``group_spacing``
phases after group ``j-1``; within its schedule, the group advances one BFS
layer per phase:

- layer-1 delivery: the root transmits the group's packets *plainly*, one
  per round (it is the only transmitter its neighbors hear — with the
  paper's spacing of 3, concurrent groups transmit at layers ≥ 3);
- layer ``d ≥ 2`` delivery: sub-routine ``FORWARD`` — the layer-``(d-1)``
  nodes that know the whole group run Decay epochs; whenever one transmits,
  it draws a fresh uniformly random subset of the group, XORs the selected
  payloads, and sends the sum with the subset bitmap as header.  A
  layer-``d`` node decodes once its received coefficient matrix has full
  rank (Lemma 3); it then joins the transmitter set for the next phase.

Every transmission of every concurrent group is resolved in the same round
through :meth:`RadioNetwork.resolve_round`, so inter-group interference is
real: with the paper's spacing of 3 the BFS layering keeps groups out of
each other's way, and the A2 ablation (spacing 1 or 2) shows the collisions
that appear when the spacing is too small.

The phase length is fixed (``max(group width, epochs·slots)`` rounds) and
the stage length is deterministic:
``(spacing·(g-1) + ecc) · phase_length`` — the Lemma 7 count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.integrity import HardenedGroupDecoder, packet_checksum
from repro.coding.packets import CodedMessage, Packet
from repro.core.config import AlgorithmParameters
from repro.primitives.decay import decay_slots
from repro.radio.errors import ProtocolError
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class DisseminationResult:
    """Outcome of Stage 4.

    Attributes
    ----------
    rounds:
        Total rounds (deterministic given the parameters).
    num_groups / group_width:
        The paper's ``g`` and ``⌈log n⌉``.
    phases:
        Total pipeline phases executed.
    phase_length:
        Rounds per phase.
    has_group:
        Boolean matrix ``[node][group]``: who decoded what.
    complete:
        Every node decoded every group *correctly* (no mis-decodes).
    failed_receivers:
        ``(node, group)`` pairs that ended without the group.
    coded_transmissions / innovative_receptions:
        Air-time accounting for the coding-efficiency experiments.
    corrupted_discarded:
        Receptions rejected by the integrity layer before Gaussian
        elimination (checksum mismatch or malformed header).
    quarantined_rows:
        Rows the hardened decoders quarantined (subset of the above plus
        keyless inconsistency detections).
    mis_decodes / mis_decoded_receivers:
        ``(node, group)`` pairs that completed with *wrong* payloads —
        only possible with ``integrity_checks`` disabled under a
        corruption adversary; always 0 with the hardened path.
    """

    rounds: int
    num_groups: int
    group_width: int
    phases: int
    phase_length: int
    has_group: np.ndarray
    complete: bool
    failed_receivers: List[Tuple[int, int]]
    coded_transmissions: int = 0
    innovative_receptions: int = 0
    plain_transmissions: int = 0
    corrupted_discarded: int = 0
    quarantined_rows: int = 0
    mis_decodes: int = 0
    mis_decoded_receivers: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.complete


def run_dissemination_stage(
    network: RadioNetwork,
    distance: Sequence[int],
    root: int,
    packets: Sequence[Packet],
    params: AlgorithmParameters,
    rng: np.random.Generator,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
) -> DisseminationResult:
    """Broadcast all ``packets`` (held by the root) to every node.

    ``distance`` is the per-node BFS layer from Stage 2 (``distance[root]``
    must be 0 and all nodes must be labeled).
    """
    n = network.n
    if distance[root] != 0:
        raise ProtocolError("distance[root] must be 0")
    dist = np.asarray(distance, dtype=np.int64)
    if (dist < 0).any():
        raise ProtocolError(
            "all nodes need a BFS distance before dissemination"
        )

    k = len(packets)
    width = params.group_width(n)
    groups: List[List[Packet]] = [
        list(packets[j : j + width]) for j in range(0, k, width)
    ]
    g = len(groups)
    group_payloads: List[List[int]] = [[p.payload for p in grp] for grp in groups]

    ecc = int(dist.max())
    spacing = params.group_spacing
    if spacing < 1:
        raise ProtocolError("group_spacing must be >= 1")

    epochs = params.forward_epochs(width)
    slots = decay_slots(network.max_degree)
    phase_length = max(width, epochs * slots)

    has_group = np.zeros((n, max(g, 1)), dtype=bool)
    has_group[root, :] = True

    if k == 0 or n == 1 or ecc == 0:
        return DisseminationResult(
            rounds=0,
            num_groups=g,
            group_width=width,
            phases=0,
            phase_length=phase_length,
            has_group=has_group,
            complete=True,
            failed_receivers=[],
        )

    # Pre-bucket nodes by BFS layer.
    layers: List[List[int]] = [[] for _ in range(ecc + 1)]
    for v in range(n):
        layers[int(dist[v])].append(v)

    integrity = params.integrity_checks
    key = params.integrity_key
    decoders: Dict[Tuple[int, int], HardenedGroupDecoder] = {}
    # (receiver, group) -> {packet index -> payload as received}
    plain_seen: Dict[Tuple[int, int], Dict[int, int]] = {}
    mis_decoded: Set[Tuple[int, int]] = set()
    total_phases = spacing * (g - 1) + ecc
    coded_tx = 0
    plain_tx = 0
    innovative_rx = 0
    corrupt_discarded = 0
    rounds = 0

    def seal_plain(j: int, idx: int, payload: int, gs: int):
        """Wire tuple for a plain packet: a unit coefficient vector, so
        the same keyed checksum covers both wire formats."""
        if not integrity:
            return ("plain", j, idx, payload, gs)
        chk = packet_checksum(j, 1 << idx, payload, gs, key)
        return ("plain", j, idx, payload, gs, chk)

    def seal_coded(j: int, mask: int, xor: int, gs: int):
        if not integrity:
            return ("coded", j, mask, xor, gs)
        chk = packet_checksum(j, mask, xor, gs, key)
        return ("coded", j, mask, xor, gs, chk)

    def group_layer(j: int, phase: int) -> int:
        """Layer group j is being delivered to during this 1-based phase,
        or 0 if the group is inactive."""
        d = phase - spacing * j
        return d if 1 <= d <= ecc else 0

    def flag_mis_decode(receiver: int, j: int) -> None:
        """Honest accounting of a completion with wrong payloads.

        Only reachable with ``integrity_checks`` off under a corruption
        adversary: the node *believes* it holds the group, but the data
        is wrong.  It is recorded (and excluded from the forwarder sets,
        so the simulation never launders truth through it) instead of
        silently delivering wrong plaintexts.
        """
        mis_decoded.add((receiver, j))
        has_group[receiver, j] = True

    def try_complete(receiver: int, j: int) -> None:
        """Promote a receiver to group holder if it can now decode."""
        if has_group[receiver, j]:
            return
        gs = len(groups[j])
        seen = plain_seen.get((receiver, j))
        if seen is not None and len(seen) == gs:
            if [seen[i] for i in range(gs)] == group_payloads[j]:
                has_group[receiver, j] = True
            else:
                flag_mis_decode(receiver, j)
            return
        dec = decoders.get((receiver, j))
        if dec is not None and dec.is_complete:
            decoded = dec.decode()
            if decoded != group_payloads[j]:
                if integrity:
                    # every absorbed row was checksum-verified, so a
                    # wrong decode can only be a library bug
                    raise ProtocolError(
                        f"decoder at node {receiver} for group {j} "
                        f"produced wrong payloads despite verified rows"
                    )
                flag_mis_decode(receiver, j)
                return
            has_group[receiver, j] = True

    for phase in range(1, total_phases + 1):
        # Which groups are active, and at which layer?
        active: List[Tuple[int, int]] = []
        for j in range(g):
            d = group_layer(j, phase)
            if d:
                active.append((j, d))

        # Transmitter sets for this phase's FORWARD executions.
        forward_sets: List[Tuple[int, int, List[int]]] = []
        root_group = -1
        for j, d in active:
            if d == 1:
                root_group = j
            else:
                senders = [
                    v for v in layers[d - 1]
                    if has_group[v, j] and (v, j) not in mis_decoded
                ]
                forward_sets.append((j, d, senders))

        touched: Set[Tuple[int, int]] = set()
        for slot in range(phase_length):
            transmissions: Dict[int, object] = {}

            if root_group >= 0:
                gs_root = len(groups[root_group])
                reps = max(1, params.root_plain_repetitions)
                if slot < gs_root * reps:
                    idx = slot % gs_root
                    pkt = groups[root_group][idx]
                    transmissions[root] = seal_plain(
                        root_group, idx, pkt.payload, gs_root
                    )
                    plain_tx += 1

            epoch_slot = slot % slots
            in_decay = (slot // slots) < epochs
            if in_decay and forward_sets:
                p_tx = 2.0 ** -(epoch_slot + 1)
                for j, d, senders in forward_sets:
                    if not senders:
                        continue
                    coins = rng.random(len(senders)) < p_tx
                    hot = np.nonzero(coins)[0]
                    if len(hot) == 0:
                        continue
                    gs = len(groups[j])
                    payloads = group_payloads[j]
                    if params.coding_enabled:
                        masks = rng.integers(0, 1 << gs, size=len(hot))
                        for idx, mask in zip(hot, masks):
                            sender = senders[int(idx)]
                            if sender in transmissions:
                                continue  # cannot happen (one layer per node)
                            mask = int(mask)
                            xor = 0
                            m = mask
                            while m:
                                b = (m & -m).bit_length() - 1
                                xor ^= payloads[b]
                                m &= m - 1
                            transmissions[sender] = seal_coded(
                                j, mask, xor, gs
                            )
                            coded_tx += 1
                    else:
                        # A1 ablation: uncoded store-and-forward — send one
                        # uniformly random plain packet of the group.
                        picks = rng.integers(0, gs, size=len(hot))
                        for idx, pick in zip(hot, picks):
                            sender = senders[int(idx)]
                            if sender in transmissions:
                                continue
                            pick = int(pick)
                            transmissions[sender] = seal_plain(
                                j, pick, payloads[pick], gs
                            )
                            plain_tx += 1

            if not transmissions:
                continue
            received = network.resolve_round(transmissions)
            if trace is not None:
                trace.observe(
                    round_offset + rounds + slot, transmissions, received
                )

            round_discarded = 0
            for receiver, msg in received.items():
                kind = msg[0]
                chk = msg[5] if len(msg) > 5 else None
                if kind == "plain":
                    _, j, idx, payload, gs = msg[:5]
                    if has_group[receiver, j]:
                        continue
                    d = group_layer(j, phase)
                    accept = (
                        params.opportunistic_decoding
                        or (d and int(dist[receiver]) == d)
                    )
                    if not accept:
                        continue
                    # verify before accepting: a malformed index is
                    # detectable without the key; a flipped bit anywhere
                    # breaks the keyed checksum
                    if not 0 <= idx < gs:
                        corrupt_discarded += 1
                        round_discarded += 1
                        continue
                    if integrity and chk is not None and chk != (
                        packet_checksum(j, 1 << idx, payload, gs, key)
                    ):
                        corrupt_discarded += 1
                        round_discarded += 1
                        continue
                    plain_seen.setdefault((receiver, j), {})[idx] = payload
                    touched.add((receiver, j))
                else:
                    _, j, mask, payload, gs = msg[:5]
                    if has_group[receiver, j]:
                        continue
                    d = group_layer(j, phase)
                    accept = (
                        params.opportunistic_decoding
                        or (d and int(dist[receiver]) == d)
                    )
                    if not accept:
                        continue
                    pair = (receiver, j)
                    dec = decoders.get(pair)
                    if dec is None:
                        dec = HardenedGroupDecoder(
                            group_id=j, group_size=gs, key=key
                        )
                        decoders[pair] = dec
                    coded = CodedMessage(
                        group_id=j,
                        subset_mask=mask,
                        payload=payload,
                        group_size=gs,
                        checksum=chk,
                    )
                    # FORWARD verifies before Gaussian elimination: the
                    # hardened decoder checksums / width-checks the row
                    # and quarantines instead of inserting
                    rejected_before = len(dec.quarantined)
                    if dec.absorb(coded):
                        innovative_rx += 1
                    newly_rejected = len(dec.quarantined) - rejected_before
                    corrupt_discarded += newly_rejected
                    round_discarded += newly_rejected
                    touched.add(pair)
            if round_discarded and trace is not None:
                trace.observe_integrity(
                    rx_corrupt_discarded=round_discarded
                )

        rounds += phase_length
        for receiver, j in touched:
            try_complete(receiver, j)

    failed = [
        (v, j)
        for v in range(n)
        for j in range(g)
        if not has_group[v, j]
    ]
    quarantined = sum(len(d.quarantined) for d in decoders.values())
    return DisseminationResult(
        rounds=rounds,
        num_groups=g,
        group_width=width,
        phases=total_phases,
        phase_length=phase_length,
        has_group=has_group,
        complete=not failed and not mis_decoded,
        failed_receivers=failed,
        coded_transmissions=coded_tx,
        innovative_receptions=innovative_rx,
        plain_transmissions=plain_tx,
        corrupted_discarded=corrupt_discarded,
        quarantined_rows=quarantined,
        mis_decodes=len(mis_decoded),
        mis_decoded_receivers=sorted(mis_decoded),
    )
