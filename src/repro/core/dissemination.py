"""Stage 4: pipelined dissemination with network coding (FORWARD, Lemma 6/7).

The root partitions the ``k`` collected packets into ``g = ⌈k/⌈log n⌉⌉``
groups of up to ``⌈log n⌉`` packets.  Group ``j`` starts ``group_spacing``
phases after group ``j-1``; within its schedule, the group advances one BFS
layer per phase:

- layer-1 delivery: the root transmits the group's packets *plainly*, one
  per round (it is the only transmitter its neighbors hear — with the
  paper's spacing of 3, concurrent groups transmit at layers ≥ 3);
- layer ``d ≥ 2`` delivery: sub-routine ``FORWARD`` — the layer-``(d-1)``
  nodes that know the whole group run Decay epochs; whenever one transmits,
  it draws a fresh uniformly random subset of the group, XORs the selected
  payloads, and sends the sum with the subset bitmap as header.  A
  layer-``d`` node decodes once its received coefficient matrix has full
  rank (Lemma 3); it then joins the transmitter set for the next phase.

Every transmission of every concurrent group is resolved in the same round
through :meth:`RadioNetwork.resolve_round`, so inter-group interference is
real: with the paper's spacing of 3 the BFS layering keeps groups out of
each other's way, and the A2 ablation (spacing 1 or 2) shows the collisions
that appear when the spacing is too small.

The phase length is fixed (``max(group width, epochs·slots)`` rounds) and
the stage length is deterministic:
``(spacing·(g-1) + ecc) · phase_length`` — the Lemma 7 count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.integrity import (
    HardenedGroupDecoder,
    coded_hop_tag,
    packet_checksum,
    plain_hop_tag,
    plain_root_tag,
)
from repro.coding.gf2 import PackedGF2Basis
from repro.coding.packets import CodedMessage, Packet
from repro.core.config import AlgorithmParameters
from repro.primitives.decay import decay_slots, decay_transmit_matrix
from repro.radio.errors import ProtocolError
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace

#: Widest group for which the 2^width subset-XOR table is materialized.
#: ``width = ⌈log n⌉`` in every real configuration, so the table is ~n
#: entries; the cap only guards hand-built parameter sets.
_XOR_TABLE_MAX_WIDTH = 20


@dataclass
class DisseminationResult:
    """Outcome of Stage 4.

    Attributes
    ----------
    rounds:
        Total rounds (deterministic given the parameters).
    num_groups / group_width:
        The paper's ``g`` and ``⌈log n⌉``.
    phases:
        Total pipeline phases executed.
    phase_length:
        Rounds per phase.
    has_group:
        Boolean matrix ``[node][group]``: who decoded what.
    complete:
        Every node decoded every group *correctly* (no mis-decodes).
    failed_receivers:
        ``(node, group)`` pairs that ended without the group.
    coded_transmissions / innovative_receptions:
        Air-time accounting for the coding-efficiency experiments.
    corrupted_discarded:
        Receptions rejected by the integrity layer before Gaussian
        elimination (checksum mismatch or malformed header).
    quarantined_rows:
        Rows the hardened decoders quarantined (subset of the above plus
        keyless inconsistency detections).
    mis_decodes / mis_decoded_receivers:
        ``(node, group)`` pairs that completed with *wrong* payloads —
        possible with ``integrity_checks`` disabled under a corruption
        adversary, or with an insider poisoning checksum-valid rows when
        authentication is off; always 0 with the authenticated path.
    byzantine_rx_discarded:
        Receptions dropped at the authentication gate (blacklisted
        sender or failed hop tag) or attributed as poison.
    poisoned_rows_attributed:
        Rows whose hop tag verified but whose content failed the root
        tag (plain) or the group-span check (coded) — provable insider
        poison, attributed to the signer in ``flagged_senders``.
    """

    rounds: int
    num_groups: int
    group_width: int
    phases: int
    phase_length: int
    has_group: np.ndarray
    complete: bool
    failed_receivers: List[Tuple[int, int]]
    coded_transmissions: int = 0
    innovative_receptions: int = 0
    plain_transmissions: int = 0
    corrupted_discarded: int = 0
    quarantined_rows: int = 0
    mis_decodes: int = 0
    mis_decoded_receivers: List[Tuple[int, int]] = field(default_factory=list)
    byzantine_rx_discarded: int = 0
    poisoned_rows_attributed: int = 0
    flagged_senders: Set[int] = field(default_factory=set)

    @property
    def success(self) -> bool:
        return self.complete


def run_dissemination_stage(
    network: RadioNetwork,
    distance: Sequence[int],
    root: int,
    packets: Sequence[Packet],
    params: AlgorithmParameters,
    rng: np.random.Generator,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
    blacklist: frozenset = frozenset(),
) -> DisseminationResult:
    """Broadcast all ``packets`` (held by the root) to every node.

    ``distance`` is the per-node BFS layer from Stage 2 (``distance[root]``
    must be 0 and all nodes must be labeled).

    When ``params.authentication`` is on, plain packets carry the root's
    tag and every transmission its sender's hop tag; receivers verify
    both — plus the group-span check on coded rows, standing in for a
    homomorphic network-coding MAC — before anything reaches a decoder.
    Tags are deterministic, so the RNG stream is untouched either way.
    ``blacklist`` names senders whose traffic honest nodes ignore.
    """
    n = network.n
    if distance[root] != 0:
        raise ProtocolError("distance[root] must be 0")
    dist = np.asarray(distance, dtype=np.int64)
    if (dist < 0).any():
        raise ProtocolError(
            "all nodes need a BFS distance before dissemination"
        )

    k = len(packets)
    width = params.group_width(n)
    groups: List[List[Packet]] = [
        list(packets[j : j + width]) for j in range(0, k, width)
    ]
    g = len(groups)
    group_payloads: List[List[int]] = [[p.payload for p in grp] for grp in groups]

    ecc = int(dist.max())
    spacing = params.group_spacing
    if spacing < 1:
        raise ProtocolError("group_spacing must be >= 1")

    epochs = params.forward_epochs(width)
    slots = decay_slots(network.max_degree)
    phase_length = max(width, epochs * slots)

    has_group = np.zeros((n, max(g, 1)), dtype=bool)
    has_group[root, :] = True

    if k == 0 or n == 1 or ecc == 0:
        return DisseminationResult(
            rounds=0,
            num_groups=g,
            group_width=width,
            phases=0,
            phase_length=phase_length,
            has_group=has_group,
            complete=True,
            failed_receivers=[],
        )

    # Pre-bucket nodes by BFS layer.
    layers: List[List[int]] = [[] for _ in range(ecc + 1)]
    for v in range(n):
        layers[int(dist[v])].append(v)

    # Precomputed subset-XOR tables: entry ``mask`` of table ``j`` is the
    # XOR of the group-``j`` payloads selected by ``mask``.  Groups are
    # ``⌈log n⌉`` wide, so each table has ~n entries, built in one DP
    # sweep; encoding a coded row and checking the span of a received one
    # become O(1) lookups instead of per-bit loops.  Guarded for
    # pathological widths where 2^width would not be worth materializing.
    if width <= _XOR_TABLE_MAX_WIDTH:
        xor_tables: Optional[List[List[int]]] = []
        for payloads_j in group_payloads:
            table = [0] * (1 << len(payloads_j))
            for b, pv in enumerate(payloads_j):
                base = 1 << b
                for lo in range(base):
                    table[base + lo] = table[lo] ^ pv
            xor_tables.append(table)
    else:
        xor_tables = None

    def subset_xor(j: int, mask: int) -> int:
        """XOR of the group-``j`` payloads selected by ``mask``."""
        if xor_tables is not None:
            return xor_tables[j][mask]
        payloads = group_payloads[j]
        xor = 0
        m = mask
        while m:
            b = (m & -m).bit_length() - 1
            xor ^= payloads[b]
            m &= m - 1
        return xor

    integrity = params.integrity_checks
    key = params.integrity_key
    auth = params.authentication
    akey = params.auth_master_key
    decoders: Dict[Tuple[int, int], HardenedGroupDecoder] = {}
    # (receiver, group) -> {packet index -> payload as received}
    plain_seen: Dict[Tuple[int, int], Dict[int, int]] = {}
    mis_decoded: Set[Tuple[int, int]] = set()
    total_phases = spacing * (g - 1) + ecc
    coded_tx = 0
    plain_tx = 0
    innovative_rx = 0
    corrupt_discarded = 0
    byz_discarded = 0
    poisoned_attributed = 0
    flagged: Set[int] = set()
    rounds = 0

    def seal_plain(sender: int, j: int, idx: int, payload: int, gs: int):
        """Wire tuple for a plain packet: a unit coefficient vector, so
        the same keyed checksum covers both wire formats.  Honest
        forwarders transmit the true payload, so the root tag they carry
        is the one the root minted for it."""
        chk = packet_checksum(j, 1 << idx, payload, gs, key) \
            if integrity else None
        if not auth:
            if chk is None:
                return ("plain", j, idx, payload, gs)
            return ("plain", j, idx, payload, gs, chk)
        rtag = plain_root_tag(root, j, idx, payload, akey)
        htag = plain_hop_tag(sender, j, idx, payload, gs,
                             -1 if chk is None else chk, rtag, akey)
        return ("plain", j, idx, payload, gs, chk, rtag, sender, htag)

    def seal_coded(sender: int, j: int, mask: int, xor: int, gs: int):
        chk = packet_checksum(j, mask, xor, gs, key) if integrity else None
        if not auth:
            if chk is None:
                return ("coded", j, mask, xor, gs)
            return ("coded", j, mask, xor, gs, chk)
        htag = coded_hop_tag(sender, j, mask, xor, gs,
                             -1 if chk is None else chk, akey)
        return ("coded", j, mask, xor, gs, chk, sender, htag)

    def in_group_span(j: int, mask: int, xor: int) -> bool:
        """The homomorphic-MAC stand-in: is ``xor`` exactly the XOR of
        the group-``j`` payloads selected by ``mask``?  An insider can
        recompute the shared checksum over poisoned data but cannot
        forge membership of the true span."""
        gs = len(groups[j])
        if not 0 <= mask < (1 << gs):
            return False
        return xor == subset_xor(j, mask)

    def group_layer(j: int, phase: int) -> int:
        """Layer group j is being delivered to during this 1-based phase,
        or 0 if the group is inactive."""
        d = phase - spacing * j
        return d if 1 <= d <= ecc else 0

    def flag_mis_decode(receiver: int, j: int) -> None:
        """Honest accounting of a completion with wrong payloads.

        Only reachable with ``integrity_checks`` off under a corruption
        adversary: the node *believes* it holds the group, but the data
        is wrong.  It is recorded (and excluded from the forwarder sets,
        so the simulation never launders truth through it) instead of
        silently delivering wrong plaintexts.
        """
        mis_decoded.add((receiver, j))
        has_group[receiver, j] = True

    def try_complete(receiver: int, j: int) -> None:
        """Promote a receiver to group holder if it can now decode."""
        if has_group[receiver, j]:
            return
        gs = len(groups[j])
        seen = plain_seen.get((receiver, j))
        if seen is not None and len(seen) == gs:
            if [seen[i] for i in range(gs)] == group_payloads[j]:
                has_group[receiver, j] = True
            else:
                flag_mis_decode(receiver, j)
            return
        dec = decoders.get((receiver, j))
        if dec is not None and dec.is_complete:
            decoded = dec.decode()
            if decoded != group_payloads[j]:
                # Reachable with integrity on: an insider knows the
                # shared checksum key, so checksum-valid poison passes
                # the gate when authentication (span checking) is off.
                # Honest accounting, never a silent wrong delivery.
                flag_mis_decode(receiver, j)
                return
            has_group[receiver, j] = True

    def process_received(
        received: Dict[int, object], phase: int, touched: Set[Tuple[int, int]]
    ) -> None:
        """Verify and absorb one resolved round's receptions.

        This is the single implementation of the Stage-4 receiver
        pipeline (layer acceptance → authentication → integrity →
        decoder), shared verbatim by the reference slot loop and the
        columnar fallback path, so the two can never drift apart.
        """
        nonlocal corrupt_discarded, byz_discarded, poisoned_attributed
        nonlocal innovative_rx
        round_discarded = 0
        round_byz = 0
        round_poisoned = 0
        for receiver, msg in received.items():
            if not (isinstance(msg, tuple) and len(msg) >= 5):
                continue  # not dissemination traffic
            kind = msg[0]
            if kind not in ("plain", "coded"):
                continue  # stray control traffic (e.g. forged ACKs)
            chk = msg[5] if len(msg) > 5 else None
            sender: Optional[int] = None
            if kind == "plain":
                _, j, idx, payload, gs = msg[:5]
                if has_group[receiver, j]:
                    continue
                d = group_layer(j, phase)
                accept = (
                    params.opportunistic_decoding
                    or (d and int(dist[receiver]) == d)
                )
                if not accept:
                    continue
                if auth:
                    if len(msg) != 9:
                        round_byz += 1
                        continue
                    rtag, sender, htag = msg[6], msg[7], msg[8]
                    if sender in blacklist:
                        round_byz += 1
                        continue
                    if htag != plain_hop_tag(
                        sender, j, idx, payload, gs,
                        -1 if chk is None else chk, rtag, akey,
                    ):
                        # unsigned/mis-signed hop: drop, no conviction
                        round_byz += 1
                        continue
                    if rtag != plain_root_tag(root, j, idx, payload,
                                              akey):
                        # the signer vouched for a payload the root
                        # never minted: provable poison
                        round_byz += 1
                        round_poisoned += 1
                        flagged.add(sender)
                        continue
                # verify before accepting: a malformed index is
                # detectable without the key; a flipped bit anywhere
                # breaks the keyed checksum
                if not 0 <= idx < gs:
                    corrupt_discarded += 1
                    round_discarded += 1
                    continue
                if integrity and chk is not None and chk != (
                    packet_checksum(j, 1 << idx, payload, gs, key)
                ):
                    corrupt_discarded += 1
                    round_discarded += 1
                    continue
                plain_seen.setdefault((receiver, j), {})[idx] = payload
                touched.add((receiver, j))
            else:
                _, j, mask, payload, gs = msg[:5]
                if has_group[receiver, j]:
                    continue
                d = group_layer(j, phase)
                accept = (
                    params.opportunistic_decoding
                    or (d and int(dist[receiver]) == d)
                )
                if not accept:
                    continue
                if auth:
                    if len(msg) != 8:
                        round_byz += 1
                        continue
                    sender, htag = msg[6], msg[7]
                    if sender in blacklist:
                        round_byz += 1
                        continue
                    if htag != coded_hop_tag(
                        sender, j, mask, payload, gs,
                        -1 if chk is None else chk, akey,
                    ):
                        round_byz += 1
                        continue
                    if not in_group_span(j, mask, payload):
                        # checksum-valid but outside the true span:
                        # only the signer could have produced it
                        round_byz += 1
                        round_poisoned += 1
                        flagged.add(sender)
                        continue
                pair = (receiver, j)
                dec = decoders.get(pair)
                if dec is None:
                    dec = HardenedGroupDecoder(
                        group_id=j, group_size=gs, key=key
                    )
                    decoders[pair] = dec
                elif dec.is_complete:
                    # A full-rank RREF basis cannot change: further
                    # rows are redundant (or quarantine fodder) and
                    # the decode result is already fixed, so skip
                    # the elimination.  Promotion still happens at
                    # phase end via ``touched``.
                    touched.add(pair)
                    continue
                coded = CodedMessage(
                    group_id=j,
                    subset_mask=mask,
                    payload=payload,
                    group_size=gs,
                    checksum=chk,
                )
                # FORWARD verifies before Gaussian elimination: the
                # hardened decoder checksums / width-checks the row
                # and quarantines instead of inserting
                rejected_before = len(dec.quarantined)
                if dec.absorb(coded, sender=sender):
                    innovative_rx += 1
                newly_rejected = len(dec.quarantined) - rejected_before
                corrupt_discarded += newly_rejected
                round_discarded += newly_rejected
                touched.add(pair)
        byz_discarded += round_byz
        poisoned_attributed += round_poisoned
        if trace is not None:
            if round_discarded:
                trace.observe_integrity(
                    rx_corrupt_discarded=round_discarded
                )
            if round_byz or round_poisoned:
                trace.observe_byzantine(
                    rx_discarded=round_byz,
                    poisoned_rows=round_poisoned,
                )

    def run_phases_columnar() -> int:
        """Columnar phase loop: whole-layer Decay schedules per epoch.

        Per active group the epoch's transmit decisions come from one
        :func:`decay_transmit_matrix` draw over the whole sender layer,
        and the coded subset masks from one batched ``rng.integers`` per
        slot — instead of per-sender Python work.  On a bare honest
        :class:`RadioNetwork` (no trace, no blacklist) the rounds go
        through :meth:`RadioNetwork.resolve_round_vector` with no wire
        tuples at all: senders are attributed to groups by their BFS
        layer (concurrent groups occupy distinct layers), per-receiver
        decoding state is a payload-free :class:`PackedGF2Basis` fed by
        ``absorb_block`` at phase end (honest rows are always
        span-consistent, so rank alone decides completion, and the
        innovative count equals the rank gain in any absorption order),
        and all integrity/authentication counters are provably zero.
        Fault wrappers, traces, and blacklists fall back to sealed wire
        tuples resolved through ``network.resolve_round`` and verified
        by the shared :func:`process_received` pipeline.

        Returns the rounds consumed (``total_phases * phase_length``).
        """
        nonlocal coded_tx, plain_tx, innovative_rx
        direct = (
            isinstance(network, RadioNetwork)
            and type(network).resolve_round is RadioNetwork.resolve_round
            and trace is None
            and not blacklist
        )
        reps = max(1, params.root_plain_repetitions)
        n_decay = epochs * slots
        layer_arrays = [np.array(lay, dtype=np.int64) for lay in layers]
        # Direct-mode decoding state: plain packets as received-bitmask
        # ints, coded rows as coefficient-only bases.
        plain_bits: Dict[Tuple[int, int], int] = {}
        bases: Dict[Tuple[int, int], PackedGF2Basis] = {}
        # Per-slot scatter buffer mapping a transmitting node to the
        # mask / packet index it sent (only slots written this round are
        # ever read back).
        val_of_tx = np.zeros(n, dtype=np.int64)
        root_arr = np.array([root], dtype=np.int64)
        rounds = 0

        for phase in range(1, total_phases + 1):
            root_group = -1
            fsets: List[Tuple[int, int, np.ndarray, int]] = []
            for j in range(g):
                d = group_layer(j, phase)
                if not d:
                    continue
                if d == 1:
                    root_group = j
                    continue
                lay = layer_arrays[d - 1]
                sel = has_group[lay, j]
                if mis_decoded:
                    sel = sel & np.array(
                        [(int(v), j) not in mis_decoded for v in lay]
                    )
                senders = lay[sel]
                if senders.size:
                    fsets.append((j, d, senders, len(groups[j])))

            gs_root = len(groups[root_group]) if root_group >= 0 else 0
            touched: Set[Tuple[int, int]] = set()
            # Direct-mode coded receptions accumulate per phase and are
            # absorbed in one block per (receiver, group) at phase end —
            # legal because promotion only happens at phase end anyway.
            rx_recv: List[np.ndarray] = []
            rx_group: List[int] = []
            rx_rows: List[np.ndarray] = []
            epoch_coins: Dict[int, np.ndarray] = {}

            for slot in range(phase_length):
                in_decay = slot < n_decay
                epoch_slot = slot % slots
                if in_decay and epoch_slot == 0:
                    for j, d, senders, gs in fsets:
                        epoch_coins[j] = decay_transmit_matrix(
                            senders.size, rng, slots
                        )

                root_tx = root_group >= 0 and slot < gs_root * reps
                tx_entries: List[Tuple[int, int, np.ndarray, np.ndarray, int]] = []
                if in_decay:
                    for j, d, senders, gs in fsets:
                        hot = senders[epoch_coins[j][epoch_slot]]
                        if hot.size == 0:
                            continue
                        if params.coding_enabled:
                            vals = rng.integers(0, 1 << gs, size=hot.size)
                            coded_tx += hot.size
                        else:
                            vals = rng.integers(0, gs, size=hot.size)
                            plain_tx += hot.size
                        tx_entries.append((j, d, hot, vals, gs))
                if root_tx:
                    plain_tx += 1

                if not root_tx and not tx_entries:
                    continue

                if direct:
                    parts = [hot for _, _, hot, _, _ in tx_entries]
                    if root_tx:
                        parts.append(root_arr)
                    tx_all = (
                        np.concatenate(parts) if len(parts) > 1 else parts[0]
                    )
                    for _, _, hot, vals, _ in tx_entries:
                        val_of_tx[hot] = vals
                    receivers, senders_of = network.resolve_round_vector(
                        tx_all
                    )
                    if receivers.size == 0:
                        continue
                    s_layer = dist[senders_of]
                    if root_tx:
                        from_root = s_layer == 0
                        rcv = receivers[from_root]
                        if rcv.size:
                            keep = ~has_group[rcv, root_group]
                            if not params.opportunistic_decoding:
                                keep &= dist[rcv] == 1
                            idx_bit = 1 << (slot % gs_root)
                            for v in rcv[keep].tolist():
                                pair = (v, root_group)
                                plain_bits[pair] = (
                                    plain_bits.get(pair, 0) | idx_bit
                                )
                                touched.add(pair)
                    for j, d, hot, vals, gs in tx_entries:
                        from_j = s_layer == d - 1
                        rcv = receivers[from_j]
                        if rcv.size == 0:
                            continue
                        snd = senders_of[from_j]
                        keep = ~has_group[rcv, j]
                        if not params.opportunistic_decoding:
                            keep &= dist[rcv] == d
                        rcv = rcv[keep]
                        if rcv.size == 0:
                            continue
                        rows = val_of_tx[snd[keep]]
                        if params.coding_enabled:
                            rx_recv.append(rcv)
                            rx_group.append(j)
                            rx_rows.append(rows)
                        else:
                            for v, pick in zip(rcv.tolist(), rows.tolist()):
                                pair = (v, j)
                                plain_bits[pair] = (
                                    plain_bits.get(pair, 0) | (1 << pick)
                                )
                                touched.add(pair)
                else:
                    transmissions: Dict[int, object] = {}
                    if root_tx:
                        idx = slot % gs_root
                        pkt = groups[root_group][idx]
                        transmissions[root] = seal_plain(
                            root, root_group, idx, pkt.payload, gs_root
                        )
                    for j, d, hot, vals, gs in tx_entries:
                        payloads = group_payloads[j]
                        if params.coding_enabled:
                            for s_, m_ in zip(hot.tolist(), vals.tolist()):
                                transmissions[s_] = seal_coded(
                                    s_, j, m_, subset_xor(j, m_), gs
                                )
                        else:
                            for s_, pick in zip(hot.tolist(), vals.tolist()):
                                transmissions[s_] = seal_plain(
                                    s_, j, pick, payloads[pick], gs
                                )
                    received = network.resolve_round(transmissions)
                    if trace is not None:
                        trace.observe(
                            round_offset + rounds + slot,
                            transmissions,
                            received,
                        )
                    process_received(received, phase, touched)

            # Phase end: batch-absorb the direct-mode coded rows, then
            # promote exactly as the reference loop does.
            if rx_recv:
                all_recv = np.concatenate(rx_recv)
                all_group = np.concatenate(
                    [np.full(r.size, j, dtype=np.int64)
                     for r, j in zip(rx_recv, rx_group)]
                )
                all_rows = np.concatenate(rx_rows)
                order = np.lexsort((all_recv, all_group))
                all_recv = all_recv[order]
                all_group = all_group[order]
                all_rows = all_rows[order]
                boundaries = np.flatnonzero(
                    (np.diff(all_recv) != 0) | (np.diff(all_group) != 0)
                ) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [all_recv.size]))
                for a, b in zip(starts.tolist(), ends.tolist()):
                    pair = (int(all_recv[a]), int(all_group[a]))
                    touched.add(pair)
                    basis = bases.get(pair)
                    if basis is None:
                        basis = PackedGF2Basis(len(groups[pair[1]]))
                        bases[pair] = basis
                    elif basis.is_complete:
                        continue
                    before = basis.rank
                    rows_block = all_rows[a:b].tolist()
                    basis.absorb_block(rows_block, [0] * (b - a))
                    innovative_rx += basis.rank - before

            rounds += phase_length
            if direct:
                for v, j in touched:
                    if has_group[v, j]:
                        continue
                    gs = len(groups[j])
                    if plain_bits.get((v, j), 0) == (1 << gs) - 1:
                        has_group[v, j] = True
                        continue
                    basis = bases.get((v, j))
                    if basis is not None and basis.is_complete:
                        has_group[v, j] = True
            else:
                for v, j in touched:
                    try_complete(v, j)
        return rounds

    if getattr(network, "engine", None) == "columnar":
        rounds = run_phases_columnar()
        failed = [
            (v, j)
            for v in range(n)
            for j in range(g)
            if not has_group[v, j]
        ]
        quarantined = sum(len(d.quarantined) for d in decoders.values())
        return DisseminationResult(
            rounds=rounds,
            num_groups=g,
            group_width=width,
            phases=total_phases,
            phase_length=phase_length,
            has_group=has_group,
            complete=not failed and not mis_decoded,
            failed_receivers=failed,
            coded_transmissions=coded_tx,
            innovative_receptions=innovative_rx,
            plain_transmissions=plain_tx,
            corrupted_discarded=corrupt_discarded,
            quarantined_rows=quarantined,
            mis_decodes=len(mis_decoded),
            mis_decoded_receivers=sorted(mis_decoded),
            byzantine_rx_discarded=byz_discarded,
            poisoned_rows_attributed=poisoned_attributed,
            flagged_senders=flagged,
        )

    for phase in range(1, total_phases + 1):
        # Which groups are active, and at which layer?
        active: List[Tuple[int, int]] = []
        for j in range(g):
            d = group_layer(j, phase)
            if d:
                active.append((j, d))

        # Transmitter sets for this phase's FORWARD executions.
        forward_sets: List[Tuple[int, int, List[int]]] = []
        root_group = -1
        for j, d in active:
            if d == 1:
                root_group = j
            else:
                senders = [
                    v for v in layers[d - 1]
                    if has_group[v, j] and (v, j) not in mis_decoded
                ]
                forward_sets.append((j, d, senders))

        touched: Set[Tuple[int, int]] = set()
        for slot in range(phase_length):
            transmissions: Dict[int, object] = {}

            if root_group >= 0:
                gs_root = len(groups[root_group])
                reps = max(1, params.root_plain_repetitions)
                if slot < gs_root * reps:
                    idx = slot % gs_root
                    pkt = groups[root_group][idx]
                    transmissions[root] = seal_plain(
                        root, root_group, idx, pkt.payload, gs_root
                    )
                    plain_tx += 1

            epoch_slot = slot % slots
            in_decay = (slot // slots) < epochs
            if in_decay and forward_sets:
                p_tx = 2.0 ** -(epoch_slot + 1)
                for j, d, senders in forward_sets:
                    if not senders:
                        continue
                    coins = rng.random(len(senders)) < p_tx
                    hot = np.nonzero(coins)[0]
                    if len(hot) == 0:
                        continue
                    gs = len(groups[j])
                    payloads = group_payloads[j]
                    if params.coding_enabled:
                        masks = rng.integers(0, 1 << gs, size=len(hot))
                        for idx, mask in zip(hot, masks):
                            sender = senders[int(idx)]
                            if sender in transmissions:
                                continue  # cannot happen (one layer per node)
                            mask = int(mask)
                            xor = subset_xor(j, mask)
                            transmissions[sender] = seal_coded(
                                sender, j, mask, xor, gs
                            )
                            coded_tx += 1
                    else:
                        # A1 ablation: uncoded store-and-forward — send one
                        # uniformly random plain packet of the group.
                        picks = rng.integers(0, gs, size=len(hot))
                        for idx, pick in zip(hot, picks):
                            sender = senders[int(idx)]
                            if sender in transmissions:
                                continue
                            pick = int(pick)
                            transmissions[sender] = seal_plain(
                                sender, j, pick, payloads[pick], gs
                            )
                            plain_tx += 1

            if not transmissions:
                continue
            received = network.resolve_round(transmissions)
            if trace is not None:
                trace.observe(
                    round_offset + rounds + slot, transmissions, received
                )

            round_discarded = 0
            round_byz = 0
            round_poisoned = 0
            for receiver, msg in received.items():
                if not (isinstance(msg, tuple) and len(msg) >= 5):
                    continue  # not dissemination traffic
                kind = msg[0]
                if kind not in ("plain", "coded"):
                    continue  # stray control traffic (e.g. forged ACKs)
                chk = msg[5] if len(msg) > 5 else None
                sender: Optional[int] = None
                if kind == "plain":
                    _, j, idx, payload, gs = msg[:5]
                    if has_group[receiver, j]:
                        continue
                    d = group_layer(j, phase)
                    accept = (
                        params.opportunistic_decoding
                        or (d and int(dist[receiver]) == d)
                    )
                    if not accept:
                        continue
                    if auth:
                        if len(msg) != 9:
                            round_byz += 1
                            continue
                        rtag, sender, htag = msg[6], msg[7], msg[8]
                        if sender in blacklist:
                            round_byz += 1
                            continue
                        if htag != plain_hop_tag(
                            sender, j, idx, payload, gs,
                            -1 if chk is None else chk, rtag, akey,
                        ):
                            # unsigned/mis-signed hop: drop, no conviction
                            round_byz += 1
                            continue
                        if rtag != plain_root_tag(root, j, idx, payload,
                                                  akey):
                            # the signer vouched for a payload the root
                            # never minted: provable poison
                            round_byz += 1
                            round_poisoned += 1
                            flagged.add(sender)
                            continue
                    # verify before accepting: a malformed index is
                    # detectable without the key; a flipped bit anywhere
                    # breaks the keyed checksum
                    if not 0 <= idx < gs:
                        corrupt_discarded += 1
                        round_discarded += 1
                        continue
                    if integrity and chk is not None and chk != (
                        packet_checksum(j, 1 << idx, payload, gs, key)
                    ):
                        corrupt_discarded += 1
                        round_discarded += 1
                        continue
                    plain_seen.setdefault((receiver, j), {})[idx] = payload
                    touched.add((receiver, j))
                else:
                    _, j, mask, payload, gs = msg[:5]
                    if has_group[receiver, j]:
                        continue
                    d = group_layer(j, phase)
                    accept = (
                        params.opportunistic_decoding
                        or (d and int(dist[receiver]) == d)
                    )
                    if not accept:
                        continue
                    if auth:
                        if len(msg) != 8:
                            round_byz += 1
                            continue
                        sender, htag = msg[6], msg[7]
                        if sender in blacklist:
                            round_byz += 1
                            continue
                        if htag != coded_hop_tag(
                            sender, j, mask, payload, gs,
                            -1 if chk is None else chk, akey,
                        ):
                            round_byz += 1
                            continue
                        if not in_group_span(j, mask, payload):
                            # checksum-valid but outside the true span:
                            # only the signer could have produced it
                            round_byz += 1
                            round_poisoned += 1
                            flagged.add(sender)
                            continue
                    pair = (receiver, j)
                    dec = decoders.get(pair)
                    if dec is None:
                        dec = HardenedGroupDecoder(
                            group_id=j, group_size=gs, key=key
                        )
                        decoders[pair] = dec
                    elif dec.is_complete:
                        # A full-rank RREF basis cannot change: further
                        # rows are redundant (or quarantine fodder) and
                        # the decode result is already fixed, so skip
                        # the elimination.  Promotion still happens at
                        # phase end via ``touched``.
                        touched.add(pair)
                        continue
                    coded = CodedMessage(
                        group_id=j,
                        subset_mask=mask,
                        payload=payload,
                        group_size=gs,
                        checksum=chk,
                    )
                    # FORWARD verifies before Gaussian elimination: the
                    # hardened decoder checksums / width-checks the row
                    # and quarantines instead of inserting
                    rejected_before = len(dec.quarantined)
                    if dec.absorb(coded, sender=sender):
                        innovative_rx += 1
                    newly_rejected = len(dec.quarantined) - rejected_before
                    corrupt_discarded += newly_rejected
                    round_discarded += newly_rejected
                    touched.add(pair)
            byz_discarded += round_byz
            poisoned_attributed += round_poisoned
            if trace is not None:
                if round_discarded:
                    trace.observe_integrity(
                        rx_corrupt_discarded=round_discarded
                    )
                if round_byz or round_poisoned:
                    trace.observe_byzantine(
                        rx_discarded=round_byz,
                        poisoned_rows=round_poisoned,
                    )

        rounds += phase_length
        for receiver, j in touched:
            try_complete(receiver, j)

    failed = [
        (v, j)
        for v in range(n)
        for j in range(g)
        if not has_group[v, j]
    ]
    quarantined = sum(len(d.quarantined) for d in decoders.values())
    return DisseminationResult(
        rounds=rounds,
        num_groups=g,
        group_width=width,
        phases=total_phases,
        phase_length=phase_length,
        has_group=has_group,
        complete=not failed and not mis_decoded,
        failed_receivers=failed,
        coded_transmissions=coded_tx,
        innovative_receptions=innovative_rx,
        plain_transmissions=plain_tx,
        corrupted_discarded=corrupt_discarded,
        quarantined_rows=quarantined,
        mis_decodes=len(mis_decoded),
        mis_decoded_receivers=sorted(mis_decoded),
        byzantine_rx_discarded=byz_discarded,
        poisoned_rows_attributed=poisoned_attributed,
        flagged_senders=flagged,
    )
