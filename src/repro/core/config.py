"""Algorithm parameters: every constant the paper hides in O(·), made explicit.

The paper's analysis uses a "sufficiently large constant c" and unstated
constants inside epoch budgets.  This module centralizes them so that

- experiments can sweep them (the constants-vs-reliability trade-off),
- tests can shrink them for speed, and
- the conservative "paper" preset reproduces the w.h.p. guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.radio.network import (  # noqa: F401  (re-exported engine control)
    ENGINES,
    RadioNetwork,
    get_default_engine,
    set_default_engine,
)


def log2n(n: int) -> float:
    """``log2 n`` clamped below at 1 so budget formulas never degenerate."""
    return max(1.0, math.log2(max(n, 2)))


@dataclass(frozen=True)
class AlgorithmParameters:
    """Tunable constants of the multi-broadcast algorithm.

    Attributes
    ----------
    c_log:
        The paper's constant ``c``: the GRAB cascade stops at
        ``c·log n`` and the final MSPG uses ``c·log n`` copies per packet
        over a ``c²·log²n`` window.
    bgi_epochs_factor:
        Decay epochs per BGI broadcast = ``factor · (D + log2 n)``; used by
        leader-election probes and the ALARM epoch.
    bfs_epochs_factor:
        Decay epochs per BFS phase = ``factor · log2 n``.
    forward_surplus:
        Extra coded receptions targeted beyond the group size; the rank
        failure probability decays as ``2^-surplus`` (Lemma 3 regime).
    forward_epochs_factor:
        FORWARD epochs = ``factor · (group_size + forward_surplus)``;
        ``factor`` compensates the per-epoch reception probability
        (≥ 1/(2e) analytically, ≈ 0.3-0.5 in practice).
    group_spacing:
        Phases between consecutive group launches in the dissemination
        pipeline.  The paper proves 3 suffices to avoid inter-group
        interference; smaller values are exposed for the A2 ablation.
    opportunistic_decoding:
        When true, nodes absorb *any* overheard coded message, not only
        those of their scheduled receiving phase (A-series ablation;
        default False = strict paper behaviour).
    coding_enabled:
        When false, FORWARD transmits a uniformly random *plain* packet of
        the group instead of a coded combination (the A1 ablation /
        uncoded baseline).
    decay_variant:
        ``"independent"`` (the paper's FORWARD formulation) or
        ``"classic"`` (BGI 1992 prefix-geometric).
    collection_estimate_factor:
        Initial Stage-3 estimate = ``factor · (D + log2 n) · log2 n``
        (the paper's starting value has factor 1).
    mspg_enabled:
        When false, GRAB omits its final MSPG cleanup (A3 ablation).
    max_collection_phases:
        Safety valve on Stage 3's doubling loop.
    k_bound_exponent:
        The paper assumes ``k`` is polynomially bounded in ``n`` and that
        nodes know the polynomial; the known bound is ``n^exponent``.
        When the doubling estimate exceeds it and alarms persist, Stage 3
        gives up honestly (the assumption is violated — e.g. the channel
        is losing every acknowledgment) instead of doubling forever.
    root_plain_repetitions:
        How many times the root cycles through a group's plain packets
        during the group's first dissemination phase.  The paper sends
        each packet once (the model has no losses); repetitions reuse
        otherwise-idle slots of the same fixed-length phase — zero round
        cost — and make the root link robust to erasures (experiment
        E15).  Default 1 = paper-faithful.
    ospg_window_factor:
        OSPG draws launch rounds from ``[1, factor·y]``; the paper's 6
        gives unique-launch probability ``(1 - 1/(6y))^(y-1) ≥ 3/4``.
        Smaller factors shrink the ``(4·factor)·y``-round procedure but
        raise the collision rate (unique-launch ≥ ``e^{-1/factor}``) —
        the collection-constant trade-off of ablation A7.
    integrity_checks:
        When true (default), Stage-4 wire messages carry the keyed
        checksum of :mod:`repro.coding.integrity` and FORWARD verifies
        every row *before* Gaussian elimination, quarantining corrupted
        ones.  Checksums are deterministic — toggling this never changes
        the RNG stream — so the fault-free execution is bit-identical
        either way; disabling it is the trusting-channel ablation that
        shows mis-decodes under a corruption adversary.
    integrity_key:
        The shared 64-bit key of the checksum scheme (a protocol
        parameter known to every node, unknown to the adversary).
    authentication:
        When true, protocol traffic additionally carries per-node MACs
        (origin tags on packets, root tags on ACKs and plain rows, hop
        tags on every transmission) so receivers can *attribute* bad
        traffic to the node that signed it — the insider defense layered
        above the shared checksum, which a Byzantine node knows.  Tags
        are deterministic, so toggling this never changes the RNG stream
        and the fault-free execution stays bit-identical.  Default off =
        paper-faithful trusting-nodes model.
    auth_master_key:
        Master key the per-node signing keys are derived from (a dealer
        secret; each node learns only its own derived key).
    fast_engine:
        **Deprecated** boolean tri-state, kept as a shim: ``True`` means
        ``engine="fast"``, ``False`` means ``engine="reference"``,
        ``None`` (default) defers to ``engine``.  Use ``engine``
        instead; setting this emits a :class:`DeprecationWarning`, and
        setting both to conflicting values raises :class:`ValueError`.
    engine:
        Simulation-engine name: one of
        :data:`repro.radio.network.ENGINES` (``"fast"``,
        ``"reference"``, ``"columnar"``) or ``None`` (default) to
        inherit whatever engine the network already uses (the process
        default, see :func:`set_default_engine`).  ``fast`` and
        ``reference`` are observationally identical — same receptions,
        same order, same RNG stream, same transcripts — which
        :mod:`repro.testing.differential` cross-checks digest-exactly.
        ``columnar`` runs the same protocol through whole-network
        vectorized stage drivers whose batched RNG draws legitimately
        reorder the random stream; it is gated by the
        semantic-equivalence oracles of :mod:`repro.testing.semantic`
        (same delivered sets, same collision counts, same drop
        accounting, same round budgets) rather than by transcript
        digests.  Threaded into the network by every entry point that
        accepts parameters
        (:class:`~repro.core.multibroadcast.MultipleMessageBroadcast`,
        the supervised/chaos runners, the baselines).
    """

    c_log: float = 1.5
    bgi_epochs_factor: float = 3.0
    bfs_epochs_factor: float = 3.0
    forward_surplus: float = 10.0
    forward_epochs_factor: float = 3.0
    group_spacing: int = 3
    opportunistic_decoding: bool = False
    coding_enabled: bool = True
    decay_variant: str = "independent"
    collection_estimate_factor: float = 1.0
    mspg_enabled: bool = True
    max_collection_phases: int = 40
    k_bound_exponent: float = 3.0
    root_plain_repetitions: int = 1
    ospg_window_factor: int = 6
    integrity_checks: bool = True
    integrity_key: int = 0x9E3779B97F4A7C15
    authentication: bool = False
    auth_master_key: int = 0xD1B54A32D192ED03
    fast_engine: Optional[bool] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fast_engine is not None:
            legacy = "fast" if self.fast_engine else "reference"
            if self.engine is None:
                import warnings

                warnings.warn(
                    "AlgorithmParameters(fast_engine=...) is deprecated; "
                    f"use engine={legacy!r} instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
                # frozen dataclass: bypass the immutability guard once,
                # during construction, to resolve the shim.
                object.__setattr__(self, "engine", legacy)
            elif self.engine != legacy:
                raise ValueError(
                    f"conflicting engine selection: fast_engine="
                    f"{self.fast_engine!r} implies {legacy!r} but engine="
                    f"{self.engine!r}"
                )
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def apply_engine(self, network) -> None:
        """Push the engine choice into ``network`` (wrappers delegate
        down to the base topology).  No-op when ``engine`` is
        ``None``."""
        engine = self.engine
        if engine is None:
            return
        set_eng = getattr(network, "set_engine", None)
        if set_eng is not None:
            set_eng(engine)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------

    @classmethod
    def fast(cls) -> "AlgorithmParameters":
        """Small budgets for quick unit tests (weaker success probability)."""
        return cls(
            c_log=1.0,
            bgi_epochs_factor=2.0,
            bfs_epochs_factor=2.0,
            forward_surplus=8.0,
            forward_epochs_factor=2.5,
        )

    @classmethod
    def paper(cls) -> "AlgorithmParameters":
        """Conservative budgets tracking the paper's w.h.p. analysis."""
        return cls(
            c_log=2.0,
            bgi_epochs_factor=4.0,
            bfs_epochs_factor=4.0,
            forward_surplus=16.0,
            forward_epochs_factor=6.0,
        )

    def with_overrides(self, **kwargs) -> "AlgorithmParameters":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Derived budgets
    # ------------------------------------------------------------------

    def c_log_n(self, n: int) -> int:
        """The paper's ``c·log n`` (at least 1)."""
        return max(1, math.ceil(self.c_log * log2n(n)))

    def bgi_epochs(self, network: RadioNetwork) -> int:
        """Epoch budget for one BGI broadcast / one election probe / ALARM."""
        return max(
            1,
            math.ceil(
                self.bgi_epochs_factor * (network.diameter + log2n(network.n))
            ),
        )

    def bfs_epochs(self, network: RadioNetwork) -> int:
        """Decay epochs per BFS construction phase."""
        return max(1, math.ceil(self.bfs_epochs_factor * log2n(network.n)))

    def forward_epochs(self, group_size: int) -> int:
        """Decay epochs per FORWARD phase for a given group size."""
        return max(
            1,
            math.ceil(
                self.forward_epochs_factor * (group_size + self.forward_surplus)
            ),
        )

    def group_width(self, n: int) -> int:
        """Packets per dissemination group: the paper's ``⌈log n⌉``."""
        return max(1, math.ceil(log2n(n)))

    def initial_collection_estimate(
        self, network: RadioNetwork, depth_bound: Optional[int] = None
    ) -> int:
        """Stage 3's starting estimate of k: ``(D + log n)·log n``."""
        d = network.diameter if depth_bound is None else depth_bound
        ln = log2n(network.n)
        return max(1, math.ceil(self.collection_estimate_factor * (d + ln) * ln))

    def max_k_estimate(self, n: int) -> int:
        """The known polynomial bound on ``k``: ``n^k_bound_exponent``.

        Stage 3 stops doubling past this value (see ``k_bound_exponent``).
        """
        return max(16, math.ceil(max(n, 2) ** self.k_bound_exponent))
