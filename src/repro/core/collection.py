"""Stage 3: packet collection at the root (OSPG / MSPG / GRAB / ALARM).

The stage runs in *phases*; each phase is a grabbing epoch (sub-routine
``GRAB(x)`` for the current estimate ``x`` of ``k``) followed by an alarming
epoch (a fixed-length multi-source BGI broadcast of a 1-bit alarm by every
node still holding an unacknowledged packet).  The estimate starts at
``(D + log n)·log n`` and doubles after every phase in which an alarm is
heard; the stage ends with a silent alarming epoch.

``OSPG(y)`` (One_Shot_Partial_Gather): every unacknowledged packet draws a
uniform launch round in ``[1, 6y]`` and is unicast hop-by-hop toward the
root along the BFS tree; no collision recovery.  The root then unicasts
acknowledgments back along the recorded reverse paths, spaced 3 rounds
apart (BFS layering makes that spacing collision-free).  The procedure
occupies exactly ``24y + 5D`` rounds.

``MSPG(x, z)`` is identical except each packet launches ``z`` independent
copies with launch rounds drawn from ``[1, 6x]``.

``GRAB(x)`` runs ``OSPG(x), OSPG(x/2), …, OSPG(c log n)`` and finishes with
``MSPG(c² log² n, c log n)``.

Simulation notes
----------------
- Every transmission is resolved through
  :meth:`RadioNetwork.resolve_round`; interference between unrelated
  unicasts (and between stray packets and ACKs) is real, not modeled away.
- A node transmits at most one message per round.  When a relay duty and a
  scheduled launch (or two relays) collide at a node in the same round, the
  relayed in-flight packet wins and the other copy is dropped — it stays
  unacknowledged and retries in a later procedure.
- The engine skips provably silent rounds computationally but charges them
  to the round budget, so timings match the protocol exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.integrity import (
    ack_root_tag,
    collection_hop_tag,
    packet_origin_tag,
    verify_auth_tag,
)
from repro.coding.packets import Packet
from repro.core.config import AlgorithmParameters
from repro.primitives.bgi_broadcast import bgi_broadcast
from repro.primitives.decay import decay_slots
from repro.radio.errors import ProtocolError
from repro.radio.network import RadioNetwork
from repro.radio.trace import RoundTrace


@dataclass
class GatherEpochResult:
    """Outcome of one OSPG/MSPG procedure."""

    rounds: int
    collected: List[int]          # pids newly received by the root, arrival order
    acked: Set[int]               # pids whose origin received the acknowledgment
    launches: int                 # packet copies actually launched
    lost_to_collisions: int       # copies that died before reaching the root
    byzantine_rx_discarded: int = 0   # receptions dropped by the auth gate
    forged_acks_rejected: int = 0     # acks whose root tag failed
    flagged: Set[int] = field(default_factory=set)  # provably bad senders


@dataclass
class CollectionResult:
    """Outcome of the whole Stage 3.

    Attributes
    ----------
    rounds:
        Total rounds consumed by the stage.
    collected_order:
        All packet ids at the root, in collection order (root-origin
        packets first, then arrivals).
    all_collected:
        The root holds every packet.
    synchronized:
        Every alarming epoch reached every node, so all nodes share the
        estimate/phase schedule (the w.h.p. agreement, measured).
    phases:
        Number of (GRAB + ALARM) phases executed.
    estimates:
        The estimate ``x`` used in each phase.
    grab_rounds / alarm_rounds:
        Round split between the two epoch kinds.
    """

    rounds: int
    collected_order: List[int]
    all_collected: bool
    synchronized: bool
    phases: int
    estimates: List[int]
    grab_rounds: int
    alarm_rounds: int
    epoch_results: List[GatherEpochResult] = field(default_factory=list, repr=False)
    byzantine_rx_discarded: int = 0
    forged_acks_rejected: int = 0
    flagged: Set[int] = field(default_factory=set)

    @property
    def success(self) -> bool:
        return self.all_collected


# ----------------------------------------------------------------------
# One gather procedure (OSPG / MSPG share this engine)
# ----------------------------------------------------------------------


def run_gather_procedure(
    network: RadioNetwork,
    parent: Sequence[int],
    root: int,
    launches: Sequence[Tuple[int, int, int]],
    window: int,
    depth_bound: int,
    already_collected: Optional[Set[int]] = None,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
    auth_key: Optional[int] = None,
    blacklist: frozenset = frozenset(),
) -> GatherEpochResult:
    """Simulate one OSPG/MSPG procedure.

    Parameters
    ----------
    launches:
        ``(pid, origin, launch_round)`` triples with
        ``launch_round ∈ [1, window]``; one triple per packet *copy*
        (MSPG passes several per packet).  Same-node/same-round conflicts
        are resolved inside (one copy transmitted, others dropped).
        Contract: a pid identifies one packet globally, so every copy of
        a pid carries the same origin (copies differ only in the round).
    window:
        The ``6y`` launch window of the procedure.
    depth_bound:
        The known upper bound on D used in the fixed procedure length
        ``(window + depth_bound) + (3·(window + depth_bound) + depth_bound)``.
    already_collected:
        Pids the root already holds; re-arrivals are acknowledged but not
        re-collected.
    auth_key:
        Master authentication key, or ``None`` for the paper's
        trusting-nodes wire format.  With a key, packets carry the
        origin's tag and ACKs the root's tag, every hop signs its
        transmission, and receivers verify before relaying: traffic from
        blacklisted senders or with a bad hop tag is discarded, and a
        *verified* hop carrying an invalid inner tag provably convicts
        the sender (honest nodes verify before relaying), which lands it
        in ``flagged``.  Tags are deterministic — the gather procedure
        draws no randomness either way.
    blacklist:
        Senders whose traffic honest nodes ignore outright.

    Returns
    -------
    GatherEpochResult
        With ``rounds`` equal to the procedure's fixed length (idle rounds
        are charged but not iterated).
    """
    t1 = window + depth_bound                       # end of the forwarding part
    total = t1 + 3 * t1 + depth_bound               # full procedure length
    collected_before = set(already_collected or ())

    origin_of: Dict[int, int] = {}
    for pid, origin, _ in launches:
        origin_of[pid] = origin

    # pending[t] = list of (pid, holder, is_launch, otag) copies to
    # transmit in round t; is_launch marks the origin's first hop (for
    # loss accounting), otag the origin's signature carried by relays.
    pending: Dict[int, List[Tuple[int, int, bool, Optional[int]]]] = {}
    for pid, origin, launch_round in launches:
        if origin == root:
            raise ProtocolError("root packets are collected, not launched")
        if not 1 <= launch_round <= window:
            raise ProtocolError(
                f"launch round {launch_round} outside [1, {window}]"
            )
        otag = (packet_origin_tag(origin, pid, auth_key)
                if auth_key is not None else None)
        pending.setdefault(launch_round, []).append((pid, origin, True, otag))

    # ack_pending[t] = list of (pid, holder, rtag) ACK hops for round t;
    # the root's acknowledgments are scheduled once part 1 closes.
    ack_pending: Dict[int, List[Tuple[int, int, Optional[int]]]] = {}

    came_from: Dict[Tuple[int, int], int] = {}      # (node, pid) -> child
    collected: List[int] = []
    collected_set: Set[int] = set()
    acked_this_epoch: Set[int] = set()
    launched = 0
    delivered_copies = 0
    byz_discarded = 0
    forged_rejected = 0
    flagged: Set[int] = set()

    # Single pass over the fixed-length procedure: forwarding traffic
    # lives in rounds [1, t1] and acknowledgments in [t1+1, total], but
    # one loop handles both kinds in any round so injected (Byzantine)
    # traffic cannot fall between two specialised passes.  With honest
    # traffic the resolved-round sequence is identical to the historical
    # two-pass engine: empty rounds are still skipped, never resolved.
    for t in range(1, total + 1):
        if t == t1 + 1:
            # Part 1 is over; the root acknowledges what it collected,
            # spaced 3 rounds apart (BFS layering keeps that clean).
            for i, pid in enumerate(collected):
                rtag = (ack_root_tag(root, pid, auth_key)
                        if auth_key is not None else None)
                ack_pending.setdefault(t1 + 1 + 3 * i, []).append(
                    (pid, root, rtag)
                )

        copies = pending.pop(t, None)
        hops = ack_pending.pop(t, None)
        if not copies and not hops:
            continue
        transmissions: Dict[int, tuple] = {}
        # Relay duty wins over a scheduled launch at the same node: sort so
        # relays (is_launch=False) claim the transmission slot first.
        for pid, holder, is_launch, otag in sorted(
            copies or (), key=lambda c: c[2]
        ):
            if holder in transmissions:
                continue  # one message per node per round; extra copy dies
            dest = parent[holder]
            if auth_key is not None:
                htag = collection_hop_tag(holder, "pkt", pid, dest, otag,
                                          auth_key)
                transmissions[holder] = ("pkt", pid, dest, holder, otag, htag)
            else:
                transmissions[holder] = ("pkt", pid, dest, holder)
            if is_launch:
                launched += 1
        for pid, holder, rtag in hops or ():
            child = came_from.get((holder, pid))
            if child is None:
                continue  # path record missing (should not happen)
            if holder in transmissions:
                continue
            if auth_key is not None:
                htag = collection_hop_tag(holder, "ack", pid, child, rtag,
                                          auth_key)
                transmissions[holder] = ("ack", pid, child, holder, rtag, htag)
            else:
                transmissions[holder] = ("ack", pid, child, holder)

        received = network.resolve_round(transmissions)
        if trace is not None:
            trace.observe(round_offset + t - 1, transmissions, received)
        for receiver, msg in received.items():
            if not (isinstance(msg, tuple) and len(msg) >= 4):
                continue  # not collection traffic
            kind, pid, dest, sender = msg[0], msg[1], msg[2], msg[3]
            if kind not in ("pkt", "ack"):
                continue
            if receiver != dest:
                continue  # overheard, not addressed to this node
            if auth_key is not None:
                if sender in blacklist:
                    byz_discarded += 1
                    continue
                inner = msg[4] if len(msg) == 6 else None
                htag = msg[5] if len(msg) == 6 else None
                if not verify_auth_tag(
                    htag, sender, (kind, pid, dest, inner), auth_key
                ):
                    # unsigned or mis-signed hop: drop, but no conviction
                    # (anyone can transmit noise under someone's name)
                    byz_discarded += 1
                    continue
                if kind == "pkt":
                    origin = origin_of.get(pid)
                    if origin is None or inner != packet_origin_tag(
                        origin, pid, auth_key
                    ):
                        # the sender signed a packet whose origin tag is
                        # forged — honest relays verify before relaying,
                        # so the forgery is the sender's own
                        byz_discarded += 1
                        flagged.add(sender)
                        continue
                else:
                    if inner != ack_root_tag(root, pid, auth_key):
                        # forged acknowledgment, provably minted by the
                        # sender: the packet stays un-collected
                        byz_discarded += 1
                        forged_rejected += 1
                        flagged.add(sender)
                        continue
            if kind == "pkt":
                key = (receiver, pid)
                if key not in came_from:
                    came_from[key] = sender
                if receiver == root:
                    delivered_copies += 1
                    if (pid not in collected_set
                            and pid not in collected_before):
                        collected_set.add(pid)
                        collected.append(pid)
                    elif pid in collected_before and pid not in collected_set:
                        # Re-arrival of a packet collected in an earlier
                        # epoch: acknowledge it again so the origin learns.
                        collected_set.add(pid)
                        collected.append(pid)
                elif t + 1 <= t1:
                    otag = msg[4] if len(msg) == 6 else None
                    pending.setdefault(t + 1, []).append(
                        (pid, receiver, False, otag)
                    )
                # else: the forwarding window closed; the copy is dropped.
            else:
                if origin_of.get(pid) == receiver:
                    acked_this_epoch.add(pid)
                elif t + 1 <= total:
                    rtag = msg[4] if len(msg) == 6 else None
                    ack_pending.setdefault(t + 1, []).append(
                        (pid, receiver, rtag)
                    )

    if trace is not None and (byz_discarded or forged_rejected):
        trace.observe_byzantine(
            rx_discarded=byz_discarded, forged_acks=forged_rejected
        )

    return GatherEpochResult(
        rounds=total,
        collected=collected,
        acked=acked_this_epoch,
        launches=launched,
        lost_to_collisions=launched - delivered_copies,
        byzantine_rx_discarded=byz_discarded,
        forged_acks_rejected=forged_rejected,
        flagged=flagged,
    )


# ----------------------------------------------------------------------
# GRAB(x): the cascade of OSPGs plus the final MSPG
# ----------------------------------------------------------------------


def grab_schedule(x: int, c_log_n: int) -> List[int]:
    """The window parameters ``y`` of the OSPG cascade inside GRAB(x):
    ``x, ⌈x/2⌉, …`` down to (and including) ``c·log n``."""
    ys: List[int] = []
    y = max(int(x), c_log_n)
    while y > c_log_n:
        ys.append(y)
        y = (y + 1) // 2
    ys.append(c_log_n)
    return ys


@dataclass
class GrabResult:
    rounds: int
    collected: List[int]
    acked: Set[int]
    epoch_results: List[GatherEpochResult]
    byzantine_rx_discarded: int = 0
    forged_acks_rejected: int = 0
    flagged: Set[int] = field(default_factory=set)


def run_grab(
    network: RadioNetwork,
    parent: Sequence[int],
    root: int,
    unacked: Dict[int, int],
    x: int,
    params: AlgorithmParameters,
    rng: np.random.Generator,
    depth_bound: int,
    already_collected: Set[int],
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
    auth_key: Optional[int] = None,
    blacklist: frozenset = frozenset(),
) -> GrabResult:
    """Run sub-routine GRAB(x).

    Parameters
    ----------
    unacked:
        ``pid -> origin`` for packets whose origins have not yet received
        an acknowledgment.  Mutated: acked pids are removed.
    already_collected:
        Pids the root holds from previous phases/procedures.  Mutated.
    """
    c_log_n = params.c_log_n(network.n)
    rounds = 0
    collected_all: List[int] = []
    acked_all: Set[int] = set()
    epoch_results: List[GatherEpochResult] = []

    window_factor = max(1, int(params.ospg_window_factor))
    columnar = getattr(network, "engine", None) == "columnar"

    def launch_and_run(window: int, copies: int) -> GatherEpochResult:
        nonlocal rounds
        launches: List[Tuple[int, int, int]] = []
        if columnar and len(unacked) > 1:
            # One batched draw for every (packet, copy) launch round.
            # numpy fills the matrix row by row, so the values match the
            # per-pid draws below; batching just removes the Python loop
            # from the per-procedure hot path.
            items = list(unacked.items())
            draws = rng.integers(
                1, window_factor * window + 1, size=(len(items), copies)
            )
            launches = [
                (pid, origin, int(r))
                for (pid, origin), row in zip(items, draws)
                for r in row
            ]
        else:
            for pid, origin in unacked.items():
                draws = rng.integers(
                    1, window_factor * window + 1, size=copies
                )
                for r in draws:
                    launches.append((pid, origin, int(r)))
        result = run_gather_procedure(
            network,
            parent,
            root,
            launches,
            window=window_factor * window,
            depth_bound=depth_bound,
            already_collected=already_collected,
            trace=trace,
            round_offset=round_offset + rounds,
            auth_key=auth_key,
            blacklist=blacklist,
        )
        rounds += result.rounds
        for pid in result.collected:
            if pid not in already_collected:
                already_collected.add(pid)
                collected_all.append(pid)
        for pid in result.acked:
            unacked.pop(pid, None)
            acked_all.add(pid)
        epoch_results.append(result)
        return result

    for y in grab_schedule(x, c_log_n):
        launch_and_run(y, copies=1)

    if params.mspg_enabled:
        launch_and_run(c_log_n * c_log_n, copies=c_log_n)

    return GrabResult(
        rounds=rounds,
        collected=collected_all,
        acked=acked_all,
        epoch_results=epoch_results,
        byzantine_rx_discarded=sum(
            e.byzantine_rx_discarded for e in epoch_results
        ),
        forged_acks_rejected=sum(
            e.forged_acks_rejected for e in epoch_results
        ),
        flagged=set().union(*(e.flagged for e in epoch_results))
        if epoch_results else set(),
    )


# ----------------------------------------------------------------------
# The full Stage 3 driver
# ----------------------------------------------------------------------


def run_collection_stage(
    network: RadioNetwork,
    parent: Sequence[int],
    distance: Sequence[int],
    root: int,
    packets: Sequence[Packet],
    params: AlgorithmParameters,
    rng: np.random.Generator,
    depth_bound: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
    blacklist: frozenset = frozenset(),
) -> CollectionResult:
    """Collect all packets at the root (Lemma 5).

    Requires a valid BFS ``parent``/``distance`` labeling from Stage 2
    (every non-root node must have a parent on a path to the root).

    When ``params.authentication`` is on, every gather procedure runs
    the verified wire format (see :func:`run_gather_procedure`);
    ``blacklist`` names senders whose traffic honest nodes ignore.
    """
    if depth_bound is None:
        depth_bound = network.diameter
    for p in packets:
        if p.origin != root and parent[p.origin] < 0:
            raise ProtocolError(
                f"packet {p.pid} originates at node {p.origin} which has no "
                f"BFS parent; run Stage 2 first"
            )

    # Root-origin packets are collected from the start.
    collected_order: List[int] = [p.pid for p in packets if p.origin == root]
    already_collected: Set[int] = set(collected_order)
    unacked: Dict[int, int] = {
        p.pid: p.origin for p in packets if p.origin != root
    }

    auth_key = params.auth_master_key if params.authentication else None

    x = params.initial_collection_estimate(network, depth_bound)
    rounds = 0
    grab_rounds = 0
    alarm_rounds = 0
    phases = 0
    estimates: List[int] = []
    synchronized = True
    all_epochs: List[GatherEpochResult] = []
    alarm_epochs = params.bgi_epochs(network)

    while phases < params.max_collection_phases:
        phases += 1
        estimates.append(x)

        grab = run_grab(
            network,
            parent,
            root,
            unacked,
            x,
            params,
            rng,
            depth_bound,
            already_collected,
            trace=trace,
            round_offset=round_offset + rounds,
            auth_key=auth_key,
            blacklist=blacklist,
        )
        rounds += grab.rounds
        grab_rounds += grab.rounds
        collected_order.extend(grab.collected)
        all_epochs.extend(grab.epoch_results)

        # Alarming epoch: fixed length, sources = origins still unacked.
        # The window elapses in full even when silent — silence is how
        # the other nodes learn the stage is over.
        sources = sorted(set(unacked.values()))
        if sources:
            alarm = bgi_broadcast(
                network,
                sources,
                rng,
                message=1,
                epochs=alarm_epochs,
                stop_early=False,
                trace=trace,
                round_offset=round_offset + rounds,
            )
            epoch_rounds = alarm.rounds
        else:
            alarm = None
            epoch_rounds = alarm_epochs * decay_slots(network.max_degree)
        rounds += epoch_rounds
        alarm_rounds += epoch_rounds

        if not sources:
            # Silence: every node hears nothing and concludes the stage is
            # over.  (A node with an unacked packet is itself a source, so
            # no node wrongly concludes completion.)
            break

        if not alarm.complete:
            # Some node missed the alarm and will not double its estimate:
            # the schedule desynchronizes.  Record it and carry on with the
            # doubled estimate so the run can still be measured end to end.
            synchronized = False
        x *= 2
        if x > params.max_k_estimate(network.n):
            # The paper's standing assumption is k ≤ poly(n) with the
            # polynomial known to all nodes.  Alarms persisting past that
            # bound mean something other than underestimation is wrong
            # (e.g. a lossy channel eating every acknowledgment); give up
            # honestly instead of doubling forever.
            break

    return CollectionResult(
        rounds=rounds,
        collected_order=collected_order,
        all_collected=not unacked,
        synchronized=synchronized,
        phases=phases,
        estimates=estimates,
        grab_rounds=grab_rounds,
        alarm_rounds=alarm_rounds,
        epoch_results=all_epochs,
        byzantine_rx_discarded=sum(
            e.byzantine_rx_discarded for e in all_epochs
        ),
        forged_acks_rejected=sum(
            e.forged_acks_rejected for e in all_epochs
        ),
        flagged=set().union(*(e.flagged for e in all_epochs))
        if all_epochs else set(),
    )
