"""The paper's algorithm: randomized multiple-message broadcast.

The public entry point is :class:`MultipleMessageBroadcast`
(:mod:`repro.core.multibroadcast`), which chains the four stages:

1. leader election (:mod:`repro.primitives.leader_election`),
2. distributed BFS (:mod:`repro.primitives.bfs`),
3. packet collection (:mod:`repro.core.collection` — OSPG / MSPG / GRAB /
   ALARM),
4. coded dissemination (:mod:`repro.core.dissemination` — FORWARD with
   random linear network coding, pipelined down the BFS layers).

All tunable constants live in :class:`AlgorithmParameters`
(:mod:`repro.core.config`); the defaults are practical laptop-scale
settings, and :meth:`AlgorithmParameters.paper` gives conservative,
bound-faithful ones.
"""

from repro.core.config import (
    ENGINES,
    AlgorithmParameters,
    get_default_engine,
    set_default_engine,
)
from repro.core.collection import CollectionResult, run_collection_stage
from repro.core.dissemination import DisseminationResult, run_dissemination_stage
from repro.core.reference import (
    reference_forward_pipeline,
    reference_gather_procedure,
)
from repro.core.multibroadcast import (
    MultiBroadcastResult,
    MultipleMessageBroadcast,
    StageTiming,
)

__all__ = [
    "ENGINES",
    "AlgorithmParameters",
    "CollectionResult",
    "DisseminationResult",
    "get_default_engine",
    "set_default_engine",
    "MultiBroadcastResult",
    "MultipleMessageBroadcast",
    "StageTiming",
    "reference_forward_pipeline",
    "reference_gather_procedure",
    "run_collection_stage",
    "run_dissemination_stage",
]
