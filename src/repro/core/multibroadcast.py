"""The multiple-message broadcast algorithm (Theorem 2): all four stages.

:class:`MultipleMessageBroadcast` chains

1. leader election among the packet holders (Fact 1),
2. distributed BFS-tree construction from the leader (Theorem 1),
3. packet collection at the root (Lemma 5), and
4. coded pipelined dissemination (Lemma 7),

and reports per-stage round counts plus end-to-end success: every node
holds all ``k`` packets.  Total time, w.h.p.:
``O(k·logΔ + (D + log n)·log n·logΔ)`` — amortized ``O(logΔ)`` per packet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coding.packets import Packet
from repro.core.collection import CollectionResult, run_collection_stage
from repro.core.config import AlgorithmParameters
from repro.core.dissemination import DisseminationResult, run_dissemination_stage
from repro.primitives.bfs import DistributedBfsResult, build_distributed_bfs
from repro.primitives.leader_election import LeaderElectionResult, elect_leader
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike, make_rng
from repro.radio.trace import RoundTrace


@dataclass
class StageTiming:
    """Rounds consumed by each stage."""

    leader_election: int = 0
    bfs: int = 0
    collection: int = 0
    dissemination: int = 0

    @property
    def total(self) -> int:
        return (
            self.leader_election + self.bfs + self.collection + self.dissemination
        )


@dataclass
class MultiBroadcastResult:
    """End-to-end outcome of one multi-broadcast execution.

    ``success`` is the paper's correctness condition: every node knows
    every packet (its own originals count, naturally).  The per-stage
    sub-results expose each stage's own w.h.p. event so experiments can
    attribute failures.
    """

    n: int
    diameter: int
    max_degree: int
    k: int
    timing: StageTiming
    success: bool
    leader: int
    election: LeaderElectionResult = field(repr=False, default=None)
    bfs: DistributedBfsResult = field(repr=False, default=None)
    collection: CollectionResult = field(repr=False, default=None)
    dissemination: DisseminationResult = field(repr=False, default=None)
    informed_fraction: float = 1.0
    trace: RoundTrace = field(repr=False, default=None)

    @property
    def total_rounds(self) -> int:
        return self.timing.total

    @property
    def amortized_rounds_per_packet(self) -> float:
        """The paper's headline metric: total rounds divided by k."""
        return self.timing.total / max(self.k, 1)


class MultipleMessageBroadcast:
    """The paper's algorithm, ready to run on a network.

    Example
    -------
    >>> from repro.topology import grid
    >>> from repro.coding.packets import make_packets, required_packet_bits
    >>> net = grid(4, 4)
    >>> pkts = make_packets([0, 5, 10, 15], required_packet_bits(net.n), seed=1)
    >>> result = MultipleMessageBroadcast(net, seed=7).run(pkts)
    >>> result.success
    True
    """

    def __init__(
        self,
        network: RadioNetwork,
        params: Optional[AlgorithmParameters] = None,
        seed: SeedLike = None,
        depth_bound: Optional[int] = None,
        keep_trace: bool = False,
        node_ids: Optional[Sequence[int]] = None,
    ):
        self.network = network
        self.params = params or AlgorithmParameters()
        self.params.apply_engine(network)
        self.rng = make_rng(seed)
        self.depth_bound = depth_bound or network.diameter
        self.trace = RoundTrace() if keep_trace else None
        #: Per-node IDs used by the leader election (the paper's nodes
        #: carry arbitrary distinct IDs); defaults to node indices.
        self.node_ids = node_ids

    def run(self, packets: Sequence[Packet]) -> MultiBroadcastResult:
        """Broadcast ``packets`` from their origins to every node."""
        network = self.network
        params = self.params
        rng = self.rng
        timing = StageTiming()
        k = len(packets)

        if k == 0:
            return MultiBroadcastResult(
                n=network.n,
                diameter=network.diameter,
                max_degree=network.max_degree,
                k=0,
                timing=timing,
                success=True,
                leader=-1,
            )
        for p in packets:
            if not 0 <= p.origin < network.n:
                raise ValueError(f"packet {p.pid} origin {p.origin} out of range")

        # ---- Stage 1: leader election among packet holders ------------
        candidates = sorted(set(p.origin for p in packets))
        election = elect_leader(
            network,
            candidates,
            rng,
            epochs_per_probe=params.bgi_epochs(network),
            trace=self.trace,
            node_ids=self.node_ids,
        )
        timing.leader_election = election.rounds

        # The protocol needs a *unique* claimant to proceed; uniqueness,
        # not being the true max, is what matters downstream.
        if len(election.claimants) != 1:
            return self._failed(k, timing, election=election)
        leader = election.claimants[0]

        # ---- Stage 2: distributed BFS from the leader ------------------
        bfs = build_distributed_bfs(
            network,
            leader,
            rng,
            depth_bound=self.depth_bound,
            epochs_per_phase=params.bfs_epochs(network),
            trace=self.trace,
        )
        timing.bfs = bfs.rounds
        if not bfs.complete:
            return self._failed(k, timing, election=election, bfs=bfs, leader=leader)

        # ---- Stage 3: collection at the root ---------------------------
        collection = run_collection_stage(
            network,
            bfs.parent,
            bfs.distance,
            leader,
            packets,
            params,
            rng,
            depth_bound=self.depth_bound,
            trace=self.trace,
        )
        timing.collection = collection.rounds
        if not collection.all_collected:
            return self._failed(
                k,
                timing,
                election=election,
                bfs=bfs,
                collection=collection,
                leader=leader,
            )

        # ---- Stage 4: coded dissemination -------------------------------
        by_pid: Dict[int, Packet] = {p.pid: p for p in packets}
        ordered = [by_pid[pid] for pid in collection.collected_order]
        dissemination = run_dissemination_stage(
            network,
            bfs.distance,
            leader,
            ordered,
            params,
            rng,
            trace=self.trace,
        )
        timing.dissemination = dissemination.rounds

        informed = self._informed_fraction(packets, dissemination, ordered)
        return MultiBroadcastResult(
            n=network.n,
            diameter=network.diameter,
            max_degree=network.max_degree,
            k=k,
            timing=timing,
            success=dissemination.complete,
            leader=leader,
            election=election,
            bfs=bfs,
            collection=collection,
            dissemination=dissemination,
            informed_fraction=informed,
            trace=self.trace,
        )

    def _informed_fraction(
        self,
        packets: Sequence[Packet],
        dissemination: DisseminationResult,
        ordered: Sequence[Packet],
    ) -> float:
        """Fraction of (node, packet) pairs delivered, counting originals."""
        n = self.network.n
        k = len(packets)
        width = dissemination.group_width
        known = 0
        group_of = {
            p.pid: i // width for i, p in enumerate(ordered)
        }
        origin_of = {p.pid: p.origin for p in packets}
        for p in packets:
            j = group_of[p.pid]
            holders = int(dissemination.has_group[:, j].sum())
            if not dissemination.has_group[origin_of[p.pid], j]:
                holders += 1  # the origin always knows its own packet
            known += holders
        return known / (n * k) if n * k else 1.0

    def _failed(self, k: int, timing: StageTiming, leader: int = -1, **stages):
        return MultiBroadcastResult(
            n=self.network.n,
            diameter=self.network.diameter,
            max_degree=self.network.max_degree,
            k=k,
            timing=timing,
            success=False,
            leader=leader,
            informed_fraction=0.0,
            trace=self.trace,
            **stages,
        )
