"""Command-line interface.

Three subcommands:

``run``
    Run the paper's algorithm on a generated topology and print the
    per-stage summary.
``compare``
    Run the algorithm and the baselines on the same instance and print
    the comparison table.
``info``
    Print the generated topology's parameters (n, D, Δ, degrees).
``chaos``
    Run the supervised (self-healing) broadcast under a seeded random
    crash schedule and print the degradation report.
``campaign``
    Checkpointed, resumable fuzz campaigns under worker supervision:
    ``run`` journals every trial to ``--dir`` (fsync'd JSONL + atomic
    manifest), ``resume`` continues after any interruption — including
    ``kill -9`` — with a byte-identical final manifest, ``status``
    inspects a checkpoint directory.  ``run --inject-worker-faults``
    chaos-tests the orchestrator itself.
``serve`` / ``submit`` / ``jobs``
    The long-running service mode: ``serve`` runs a daemon that drains
    a durable spool of submitted jobs onto a persistent supervised
    worker pool with admission control and load shedding (SIGTERM
    drains and exits 143; ``kill -9`` loses nothing), ``submit``
    spools jobs (idempotent by id), ``jobs`` inspects the service
    directory.  ``serve --self-test`` chaos-tests the service itself.

Examples
--------
::

    python -m repro run --topology grid --rows 5 --cols 5 --k 20 --seed 1
    python -m repro run --topology rgg --n 60 --k 100 --preset paper
    python -m repro compare --topology grid --rows 6 --cols 6 --k 200
    python -m repro info --topology tree --branching 3 --depth 4
    python -m repro chaos --topology grid --rows 5 --cols 5 --k 10 \\
        --crash-frac 0.1
    python -m repro chaos --topology grid --rows 5 --cols 5 --k 10 \\
        --crash-frac 0 --byzantine-frac 0.1 --byzantine-mode ack_forge
    python -m repro campaign run --dir sweep --trials 200 --profile medium
    python -m repro campaign resume sweep
    python -m repro campaign status sweep --json
    python -m repro serve --dir jobs-dir --workers 4
    python -m repro submit --dir jobs-dir --kind simulation --seed 7
    python -m repro jobs jobs-dir --json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines import decay_gossip_broadcast, sequential_bgi_broadcast
from repro.core import AlgorithmParameters, MultipleMessageBroadcast
from repro.experiments.report import render_table
from repro.experiments.workloads import (
    all_nodes_one_packet,
    hotspot_placement,
    single_source_burst,
    uniform_random_placement,
)
from repro.radio.network import RadioNetwork
from repro.radio.rng import make_rng
from repro.resilience.byzantine import BYZANTINE_MODES
from repro.topology import (
    balanced_tree,
    clique,
    graph_summary,
    grid,
    line,
    random_connected_gnp,
    random_geometric,
    ring,
    star,
)

PRESETS = {
    "default": AlgorithmParameters,
    "fast": AlgorithmParameters.fast,
    "paper": AlgorithmParameters.paper,
}


def build_topology(args: argparse.Namespace) -> RadioNetwork:
    """Construct the requested topology from parsed arguments."""
    kind = args.topology
    if kind == "line":
        return line(args.n)
    if kind == "ring":
        return ring(args.n)
    if kind == "star":
        return star(args.n)
    if kind == "clique":
        return clique(args.n)
    if kind == "grid":
        return grid(args.rows, args.cols)
    if kind == "tree":
        return balanced_tree(args.branching, args.depth)
    if kind == "rgg":
        return random_geometric(args.n, seed=args.topology_seed)
    if kind == "gnp":
        return random_connected_gnp(args.n, seed=args.topology_seed)
    raise ValueError(f"unknown topology {kind!r}")


def build_workload(network: RadioNetwork, args: argparse.Namespace):
    """Construct the packet placement from parsed arguments."""
    if args.workload == "uniform":
        return uniform_random_placement(network, args.k, seed=args.seed)
    if args.workload == "single":
        return single_source_burst(network, args.k, source=0, seed=args.seed)
    if args.workload == "hotspot":
        return hotspot_placement(network, args.k, seed=args.seed)
    if args.workload == "all":
        return all_nodes_one_packet(network, seed=args.seed)
    raise ValueError(f"unknown workload {args.workload!r}")


def _add_common(
    parser: argparse.ArgumentParser, topology_required: bool = True
) -> None:
    parser.add_argument(
        "--topology",
        required=topology_required,
        choices=["line", "ring", "star", "clique", "grid", "tree", "rgg", "gnp"],
    )
    parser.add_argument("--n", type=int, default=36,
                        help="node count (line/ring/star/clique/rgg/gnp)")
    parser.add_argument("--rows", type=int, default=6, help="grid rows")
    parser.add_argument("--cols", type=int, default=6, help="grid cols")
    parser.add_argument("--branching", type=int, default=2, help="tree arity")
    parser.add_argument("--depth", type=int, default=4, help="tree depth")
    parser.add_argument("--topology-seed", type=int, default=0,
                        help="seed for random topologies")


def _add_run_args(
    parser: argparse.ArgumentParser, topology_required: bool = True
) -> None:
    _add_common(parser, topology_required=topology_required)
    parser.add_argument("--k", type=int, default=10, help="number of packets")
    parser.add_argument(
        "--workload", default="uniform",
        choices=["uniform", "single", "hotspot", "all"],
    )
    parser.add_argument("--seed", type=int, default=0, help="algorithm seed")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS))
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record the full transcript; write per-node stats and the "
             "first rounds to FILE",
    )


def cmd_info(args: argparse.Namespace) -> int:
    network = build_topology(args)
    summary = graph_summary(network)
    print(render_table(
        ["parameter", "value"],
        [[key, value] for key, value in summary.items()],
        title=f"Topology: {network.name}",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    network = build_topology(args)
    packets = build_workload(network, args)
    params = PRESETS[args.preset]()

    recorder = None
    run_network = network
    if args.trace:
        from repro.radio.transcript import RecordingNetwork

        recorder = RecordingNetwork(network)
        run_network = recorder

    result = MultipleMessageBroadcast(
        run_network, params=params, seed=args.seed
    ).run(packets)

    if recorder is not None:
        _write_trace_report(args.trace, network, recorder)

    rows = [
        ["n / D / Δ", f"{result.n} / {result.diameter} / {result.max_degree}"],
        ["k", result.k],
        ["stage 1: leader election", result.timing.leader_election],
        ["stage 2: distributed BFS", result.timing.bfs],
        ["stage 3: collection", result.timing.collection],
        ["stage 4: dissemination", result.timing.dissemination],
        ["total rounds", result.total_rounds],
        ["amortized rounds/packet",
         f"{result.amortized_rounds_per_packet:.1f}"],
        ["leader", result.leader],
        ["success", "yes" if result.success else "NO"],
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"Multi-broadcast on {network.name} (preset={args.preset})",
    ))
    return 0 if result.success else 1


def _write_trace_report(path: str, network, recorder) -> None:
    """Write per-node transmission/reception stats and the first rounds
    of a recorded execution to ``path``."""
    from repro.radio.transcript import (
        per_node_receptions,
        per_node_transmissions,
        transcript_to_text,
        verify_transcript,
    )

    tx = per_node_transmissions(recorder.transcript, network.n)
    rx = per_node_receptions(recorder.transcript, network.n)
    violations = verify_transcript(network, recorder.transcript)
    with open(path, "w") as fh:
        fh.write(f"# transcript of {network.name}: "
                 f"{len(recorder.transcript)} busy rounds\n")
        fh.write(f"# model audit: "
                 f"{'OK' if not violations else violations[:3]}\n\n")
        fh.write(render_table(
            ["node", "transmissions", "receptions"],
            [[v, tx[v], rx[v]] for v in range(network.n)],
            title="per-node activity",
        ))
        fh.write("\n\nfirst rounds:\n")
        fh.write(transcript_to_text(recorder.transcript, max_rounds=100))
        fh.write("\n")
    print(f"transcript report written to {path}")


def cmd_compare(args: argparse.Namespace) -> int:
    network = build_topology(args)
    packets = build_workload(network, args)
    params = PRESETS[args.preset]()

    ours = MultipleMessageBroadcast(
        network, params=params, seed=args.seed
    ).run(packets)
    gossip = decay_gossip_broadcast(network, packets, make_rng(args.seed))
    seq_prefix = packets[: min(10, len(packets))]
    seq = sequential_bgi_broadcast(network, seq_prefix, make_rng(args.seed))

    rows = [
        ["this paper", ours.total_rounds,
         f"{ours.amortized_rounds_per_packet:.1f}",
         "yes" if ours.success else "NO"],
        ["gossip (BII-style)", gossip.rounds,
         f"{gossip.amortized_rounds_per_packet:.1f}",
         "yes" if gossip.complete else "NO"],
        [f"sequential BGI (first {len(seq_prefix)})", seq.rounds,
         f"{seq.amortized_rounds_per_packet:.1f}",
         "yes" if seq.complete else "NO"],
    ]
    print(render_table(
        ["algorithm", "rounds", "rounds/packet", "complete"], rows,
        title=f"Comparison on {network.name}, k={len(packets)}",
    ))
    return 0 if ours.success else 1


def _fuzz_topology_spec(args: argparse.Namespace) -> dict:
    """Serializable topology spec from the ``chaos fuzz`` flags."""
    kind = args.fz_topology
    if kind == "grid":
        return {"kind": "grid", "rows": args.fz_rows, "cols": args.fz_cols}
    if kind == "tree":
        return {
            "kind": "tree",
            "branching": args.fz_branching,
            "depth": args.fz_depth,
        }
    if kind in ("rgg", "gnp"):
        return {"kind": kind, "n": args.fz_n, "seed": args.fz_topology_seed}
    return {"kind": kind, "n": args.fz_n}


def _campaign_config_from_args(args: argparse.Namespace):
    from repro.resilience.chaos import CampaignConfig

    return CampaignConfig(
        profile=args.profile,
        topology=_fuzz_topology_spec(args),
        workload={"kind": args.fz_workload, "k": args.fz_k},
        preset=args.fz_preset,
        ablation=args.ablation,
        round_bound_factor=args.round_bound_factor,
    )


def _shrink_and_bundle(config, report, stream, no_shrink: bool):
    """Post-campaign pass: shrink each violating trial and (re)write its
    failure bundle with the minimized campaign attached.

    The bundles themselves were already streamed to disk as the trials
    completed; this pass only enriches them, so an interruption here
    still leaves a replayable artifact per violation.
    """
    from repro.resilience.chaos import (
        ChaosCampaign,
        evaluate_campaign,
        shrink_campaign,
    )
    from repro.resilience.chaos.runner import make_policy

    shrink_sizes = []
    for trial in report.violating:
        campaign = ChaosCampaign.from_json(trial["campaign"])
        shrink = None
        shrunk_verdicts = None
        if not no_shrink:
            shrink = shrink_campaign(
                campaign,
                [v["name"] for v in trial["violations"]],
                preset=config.preset,
                round_bound_factor=config.round_bound_factor,
            )
            _, shrunk_verdicts = evaluate_campaign(
                shrink.shrunk,
                policy=make_policy(shrink.shrunk),
                preset=config.preset,
                round_bound_factor=config.round_bound_factor,
            )
            shrink_sizes.append(shrink.atoms_after)
        stream.attach_shrink(
            trial, shrink=shrink, shrunk_verdicts=shrunk_verdicts
        )
    return shrink_sizes


class _SignalInterrupt(KeyboardInterrupt):
    """KeyboardInterrupt that remembers which signal raised it.

    Subclassing KeyboardInterrupt routes SIGTERM through the exact
    flush-and-checkpoint path SIGINT already takes (the orchestrator
    catches KeyboardInterrupt); ``signum`` survives into
    ``CampaignInterrupted`` so the exit code is ``128 + signum`` for
    both — 130 for SIGINT, 143 for SIGTERM.
    """

    def __init__(self, signum: int) -> None:
        super().__init__()
        self.signum = signum


def _install_sigterm_handler() -> None:
    """Make SIGTERM drain like SIGINT instead of killing mid-write."""
    import signal as _signal

    def _raise(signum, frame):
        raise _SignalInterrupt(signum)

    try:
        _signal.signal(_signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - non-main thread (embedding)
        pass


def _interrupted_exit(exc) -> int:
    """Signal path: report what was preserved, exit ``128 + signum``."""
    import signal as _signal

    from repro.experiments.orchestrator import CampaignInterrupted

    signum = int(getattr(exc, "signum", _signal.SIGINT))
    if isinstance(exc, CampaignInterrupted):
        done = len(exc.outcome.results)
        if exc.checkpoint_dir is not None:
            print(
                f"interrupted: {done} completed trial(s) checkpointed in "
                f"{exc.checkpoint_dir}; continue with "
                f"'repro campaign resume {exc.checkpoint_dir}'",
                file=sys.stderr,
            )
        else:
            print(
                f"interrupted: {done} completed trial(s) discarded "
                f"(run under 'repro campaign run' or pass "
                f"--checkpoint-dir to keep progress)",
                file=sys.stderr,
            )
    else:
        print("interrupted", file=sys.stderr)
    return 128 + signum


def _emit_fuzz_summary(
    report, stream, shrink_sizes, as_json: bool, title: str, extra=None
) -> None:
    import json

    summary = report.summary()
    summary["artifacts"] = [str(p) for p in stream.paths]
    if shrink_sizes:
        summary["shrunk_atom_sizes"] = shrink_sizes
    if extra:
        summary.update(extra)
    if as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    rows = [
        [key, value if isinstance(value, (int, float)) else str(value)]
        for key, value in summary.items()
    ]
    print(render_table(["metric", "value"], rows, title=title))
    for trial in report.violating:
        names = ", ".join(v["name"] for v in trial["violations"])
        print(f"  seed {trial['seed']}: violated [{names}]")
    for entry in report.quarantined:
        print(
            f"  seed {entry['seed']}: QUARANTINED "
            f"({entry['signature']})"
        )


def cmd_chaos_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.orchestrator import CampaignInterrupted
    from repro.resilience.chaos import ArtifactStream, run_campaign

    _install_sigterm_handler()
    config = _campaign_config_from_args(args)
    stream = ArtifactStream(config, Path(args.artifact_dir))
    try:
        report = run_campaign(
            config,
            trials=args.trials,
            base_seed=args.fz_seed,
            max_workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            on_result=stream,
        )
        shrink_sizes = _shrink_and_bundle(
            config, report, stream, args.no_shrink
        )
    except (CampaignInterrupted, KeyboardInterrupt) as exc:
        return _interrupted_exit(exc)

    _emit_fuzz_summary(
        report, stream, shrink_sizes, args.fz_json,
        title=f"Chaos fuzz: {args.trials} trials, "
              f"profile={config.profile}, ablation={config.ablation}",
    )
    return 1 if report.violating or report.quarantined else 0


def cmd_chaos_replay(args: argparse.Namespace) -> int:
    import json

    from repro.resilience.chaos import load_artifact, replay_artifact

    artifact = load_artifact(args.artifact)
    replay = replay_artifact(artifact, which=args.which)
    summary = replay.summary()
    summary["verdicts"] = [v.to_json() for v in replay.verdicts]
    if args.rp_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        rows = [
            ["campaign", args.which],
            ["seed", replay.seed],
            ["violations", ", ".join(
                v.name for v in replay.violations) or "none"],
            ["deterministic", "yes" if replay.deterministic else "NO"],
        ]
        print(render_table(
            ["metric", "value"], rows,
            title=f"Chaos replay: {args.artifact}",
        ))
    return 0 if replay.deterministic else 1


def _orchestrator_from_args(args: argparse.Namespace):
    from repro.experiments.orchestrator import (
        FaultInjection,
        OrchestratorConfig,
    )

    inject = None
    if getattr(args, "inject_worker_faults", False):
        inject = FaultInjection(
            seed=args.inject_seed,
            kill_prob=args.inject_kill_prob,
            hang_prob=args.inject_hang_prob,
            poison_frac=args.inject_poison_frac,
            hang_seconds=args.inject_hang_seconds,
        )
    return OrchestratorConfig(
        num_workers=args.workers,
        max_attempts=args.max_attempts,
        task_timeout=args.task_timeout,
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
        inject=inject,
    )


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.orchestrator import CampaignInterrupted
    from repro.resilience.chaos import ArtifactStream, run_campaign

    _install_sigterm_handler()
    config = _campaign_config_from_args(args)
    checkpoint_dir = Path(args.dir)
    artifact_dir = (
        Path(args.artifact_dir) if args.artifact_dir
        else checkpoint_dir / "artifacts"
    )
    stream = ArtifactStream(config, artifact_dir)
    try:
        report = run_campaign(
            config,
            trials=args.trials,
            base_seed=args.fz_seed,
            checkpoint_dir=checkpoint_dir,
            orchestrator=_orchestrator_from_args(args),
            on_result=stream,
        )
        shrink_sizes = _shrink_and_bundle(
            config, report, stream, args.no_shrink
        )
    except (CampaignInterrupted, KeyboardInterrupt) as exc:
        return _interrupted_exit(exc)

    _emit_fuzz_summary(
        report, stream, shrink_sizes, args.fz_json,
        title=f"Campaign: {args.trials} trials, "
              f"profile={config.profile}, ablation={config.ablation}",
        extra={
            "checkpoint_dir": str(checkpoint_dir),
            "manifest": str(checkpoint_dir / "manifest.json"),
            "orchestration": report.orchestration,
        },
    )
    return 1 if report.violating or report.quarantined else 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.orchestrator import (
        CampaignInterrupted,
        campaign_header,
    )
    from repro.resilience.chaos import (
        ArtifactStream,
        CampaignConfig,
        resume_campaign,
    )

    _install_sigterm_handler()
    checkpoint_dir = Path(args.dir)
    config = CampaignConfig.from_json(
        campaign_header(checkpoint_dir).spec["config"]
    )
    artifact_dir = (
        Path(args.artifact_dir) if args.artifact_dir
        else checkpoint_dir / "artifacts"
    )
    stream = ArtifactStream(config, artifact_dir)
    try:
        report = resume_campaign(
            checkpoint_dir,
            max_workers=args.workers,
            orchestrator=_orchestrator_from_args(args),
            on_result=stream,
        )
        shrink_sizes = _shrink_and_bundle(
            config, report, stream, args.no_shrink
        )
    except (CampaignInterrupted, KeyboardInterrupt) as exc:
        return _interrupted_exit(exc)

    _emit_fuzz_summary(
        report, stream, shrink_sizes, args.fz_json,
        title=f"Campaign resumed: {report.num_trials} trials, "
              f"profile={config.profile}, ablation={config.ablation}",
        extra={
            "checkpoint_dir": str(checkpoint_dir),
            "manifest": str(checkpoint_dir / "manifest.json"),
            "orchestration": report.orchestration,
        },
    )
    return 1 if report.violating or report.quarantined else 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.orchestrator import campaign_status
    from repro.experiments.report import render_status_summary

    status = campaign_status(args.dir)
    if args.fz_json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        rows = [
            [key, value if isinstance(value, (int, float)) else str(value)]
            for key, value in status.items()
            if key not in ("spec", "quarantine_details", "retries",
                           "quarantined_seeds")
        ]
        print(render_status_summary(
            f"Campaign status: {args.dir}",
            rows,
            quarantine=status["quarantine_details"],
            retries=status["retries"],
        ))
    return 0 if status["complete"] else 3


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "run":
        return cmd_campaign_run(args)
    if args.campaign_command == "resume":
        return cmd_campaign_resume(args)
    return cmd_campaign_status(args)


def _parse_job_params(pairs: List[str]) -> dict:
    """``key=value`` pairs; values parse as JSON when they can."""
    import json

    params = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(
                f"repro submit: --param expects key=value, got {pair!r}"
            )
        key, _, raw = pair.partition("=")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal as _signal
    import tempfile

    from repro.service import ServiceConfig, ServiceDaemon, run_selftest

    if args.self_test:
        base = args.dir or tempfile.mkdtemp(prefix="repro-serve-selftest-")
        result = run_selftest(
            base,
            log=lambda line: print(line, file=sys.stderr),
        )
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result["ok"] else 1
    if not args.dir:
        print("repro serve: --dir is required", file=sys.stderr)
        return 2

    inject = None
    if args.inject_worker_faults:
        from repro.experiments.orchestrator import FaultInjection

        inject = FaultInjection(
            seed=args.inject_seed,
            kill_prob=args.inject_kill_prob,
            hang_prob=args.inject_hang_prob,
            poison_frac=args.inject_poison_frac,
            hang_seconds=args.inject_hang_seconds,
        )
    config = ServiceConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        queue_policy=args.queue_policy,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_attempts=args.max_attempts,
        task_timeout=args.task_timeout,
        drain_grace=args.drain_grace,
        idle_exit=args.idle_exit,
        inject=inject,
    )
    daemon = ServiceDaemon(args.dir, config)

    def _drain(signum, frame):
        daemon.request_drain(signum)

    try:
        _signal.signal(_signal.SIGTERM, _drain)
        _signal.signal(_signal.SIGINT, _drain)
    except ValueError:  # pragma: no cover - non-main thread (embedding)
        pass

    signum = daemon.run()
    snapshot = daemon.snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        rows = [
            [key, value if isinstance(value, (int, float)) else str(value)]
            for key, value in sorted(snapshot.items())
        ]
        print(render_table(
            ["metric", "value"], rows,
            title=f"Service drained: {args.dir}"
                  if signum else f"Service idle-exit: {args.dir}",
        ))
    return 128 + signum if signum else 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.service import JobSpec, derive_job_id, submit_to_spool

    specs: List[JobSpec] = []
    if args.file:
        data = json.loads(Path(args.file).read_text())
        for entry in data if isinstance(data, list) else [data]:
            specs.append(JobSpec.from_json(entry))
    else:
        params = _parse_job_params(args.param)
        for i in range(args.count):
            seed = args.seed + i
            job_id = (
                args.id if args.id and args.count == 1
                else (f"{args.id}-{i:04d}" if args.id
                      else derive_job_id(args.kind, args.tenant, seed,
                                         params))
            )
            specs.append(JobSpec(
                id=job_id, kind=args.kind, tenant=args.tenant,
                priority=args.priority, seed=seed, params=params,
            ))
    paths = [submit_to_spool(args.dir, spec) for spec in specs]
    if args.json:
        print(json.dumps(
            {"submitted": [s.id for s in specs],
             "spool": [str(p) for p in paths]},
            indent=2, sort_keys=True,
        ))
    else:
        for spec in specs:
            print(f"spooled {spec.id} ({spec.kind}, tenant={spec.tenant})")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.report import render_status_summary
    from repro.service import service_status

    status = service_status(args.dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        rows = [
            [key, value if isinstance(value, (int, float)) else str(value)]
            for key, value in status.items()
            if key not in ("quarantine_details", "retries")
        ]
        print(render_status_summary(
            f"Service jobs: {args.dir}",
            rows,
            quarantine=status["quarantine_details"],
            retries=status["retries"],
        ))
    return 0 if status["complete"] else 3


def cmd_chaos(args: argparse.Namespace) -> int:
    if getattr(args, "chaos_command", None) == "fuzz":
        return cmd_chaos_fuzz(args)
    if getattr(args, "chaos_command", None) == "replay":
        return cmd_chaos_replay(args)
    if args.topology is None:
        print(
            "repro chaos: --topology is required "
            "(or use 'repro chaos fuzz' / 'repro chaos replay')",
            file=sys.stderr,
        )
        return 2

    from repro.resilience import (
        SupervisedBroadcast,
        make_adversary,
        random_byzantine_set,
        random_crash_schedule,
        supervised_metrics,
    )

    network = build_topology(args)
    packets = build_workload(network, args)
    params = PRESETS[args.preset]()

    exclude = set()
    if not args.allow_leader_crash and packets:
        exclude.add(max(p.origin for p in packets))
    if args.crash_round is not None:
        schedule = random_crash_schedule(
            network.n, args.crash_frac, seed=args.seed,
            at_round=args.crash_round, exclude=exclude,
        )
    else:
        schedule = random_crash_schedule(
            network.n, args.crash_frac, seed=args.seed,
            after_stage=args.crash_stage, exclude=exclude,
        )
    adversary = make_adversary(
        jam_prob=args.jam_prob,
        corruption_rate=args.corrupt_rate,
        jam_budget=args.jam_budget,
        seed=args.seed,
    )
    byzantine = None
    if args.byzantine_frac > 0.0:
        # a node cannot both crash and equivocate (schedule.validate
        # rejects the overlap), and the expected leader stays honest —
        # leader capture is the no-auth id_inflation scenario, not the
        # default sweep
        byzantine = random_byzantine_set(
            network.n, args.byzantine_frac, args.byzantine_mode,
            seed=args.seed,
            exclude=exclude | schedule.crashed_ever,
        )
        if byzantine is not None:
            # insiders force the hardened configuration on
            params = params.with_overrides(authentication=True)

    result = SupervisedBroadcast(
        network, schedule=schedule, params=params, seed=args.seed,
        adversary=adversary, byzantine=byzantine,
    ).run(packets)

    if args.json:
        import json

        report = supervised_metrics(result)
        report["n"] = float(network.n)
        report["k"] = float(result.k)
        report["crash_frac"] = float(args.crash_frac)
        report["jam_prob"] = float(args.jam_prob)
        report["corrupt_rate"] = float(args.corrupt_rate)
        report["byzantine_frac"] = float(args.byzantine_frac)
        report["byzantine_mode"] = args.byzantine_mode
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if result.success else 1

    stats = result.fault_stats
    rows = [
        ["n / D / Δ",
         f"{network.n} / {network.diameter} / {network.max_degree}"],
        ["k", result.k],
        ["scheduled crashes", len(schedule.crashed_ever)],
        ["crashes applied", stats.get("crashes", 0)],
        ["survivors", len(result.survivors)],
        ["leader", result.leader],
        ["re-elections", result.reelections],
        ["stage retries", result.retries],
        ["tree repairs", result.repairs_run],
        ["packets lost (origin died)", len(result.packets_lost)],
        ["packets undelivered", len(result.packets_undelivered)],
        ["informed fraction (survivors)",
         f"{result.informed_fraction:.3f}"],
        ["coverage (non-lost / k)", f"{result.coverage:.3f}"],
        ["total rounds", result.total_rounds],
        ["watchdog budget", result.round_budget],
        ["watchdog tripped", "YES" if result.watchdog_tripped else "no"],
        ["tx suppressed", stats.get("tx_suppressed", 0)],
        ["rx suppressed (dead/link/jam/adv)",
         f"{stats.get('rx_suppressed_dead', 0)}"
         f"/{stats.get('rx_suppressed_link', 0)}"
         f"/{stats.get('rx_suppressed_jam', 0)}"
         f"/{stats.get('rx_jammed_adversary', 0)}"],
        ["rx corrupted / discarded",
         f"{stats.get('rx_corrupted', 0)}/{result.corrupt_discarded}"],
        ["mis-decodes", result.mis_decodes],
        ["success", "yes" if result.success else "NO"],
    ]
    if byzantine is not None:
        rows[-1:-1] = [
            ["byzantine insiders",
             f"{stats.get('byzantine_nodes', 0)} ({args.byzantine_mode})"],
            ["blacklisted / suspected",
             f"{len(result.blacklisted)}/{len(result.suspected)}"],
            ["rx discarded (auth gate)", result.byzantine_rx_discarded],
            ["forged acks rejected", result.forged_acks_rejected],
            ["poisoned rows attributed", result.poisoned_rows_attributed],
            ["mis-attributions", result.mis_attributions],
        ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"Supervised broadcast on {network.name} "
              f"(crash-frac={args.crash_frac}, preset={args.preset})",
    ))
    return 0 if result.success else 1


def cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.dynamic import BatchedDynamicBroadcast, poisson_arrivals

    network = build_topology(args)
    params = PRESETS[args.preset]()
    arrivals = poisson_arrivals(
        network, rate=args.rate, horizon=args.horizon, seed=args.seed
    )
    result = BatchedDynamicBroadcast(
        network, params=params, seed=args.seed
    ).run(arrivals)

    rows = [
        ["arrivals", len(arrivals)],
        ["batches", result.num_batches],
        ["mean batch size", f"{result.mean_batch_size:.1f}"],
        ["max batch size", result.max_batch_size],
        ["mean latency (rounds)", f"{result.mean_latency:.0f}"],
        ["max latency (rounds)", result.max_latency],
        ["delivered", result.delivered],
        ["failed", result.failed],
        ["throughput (pkt/round)", f"{result.throughput:.5f}"],
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"Batched dynamic broadcast on {network.name} "
              f"(rate={args.rate}, horizon={args.horizon})",
    ))
    return 0 if result.failed == 0 else 1


def cmd_continuous(args: argparse.Namespace) -> int:
    from repro.coding.packets import required_packet_bits
    from repro.dynamic import (
        ChurnBudget,
        ChurnNetwork,
        ContinuousBroadcast,
        ContinuousPolicy,
        PoissonProcess,
        adversarial_churn_schedule,
        random_churn_schedule,
    )

    base = build_topology(args)
    n = base.n

    byz_nodes: list = []
    if args.byzantine_frac > 0:
        count = max(1, int(args.byzantine_frac * n))
        rng = make_rng(args.seed + 17)
        byz_nodes = sorted(
            int(v) for v in rng.choice(n, size=min(count, n - 1),
                                       replace=False)
        )

    churn = None
    adv_spec = None
    if args.adversarial_churn is not None:
        adv_spec, churn = adversarial_churn_schedule(
            base, args.rounds,
            strategy=args.adversarial_churn,
            budget=ChurnBudget(max_events=args.churn_budget),
            seed=args.churn_seed,
            repair_window=args.repair_window,
            exclude=byz_nodes,
        )
    elif args.leave_frac > 0 or args.join_frac > 0 or args.edge_flips > 0:
        churn = random_churn_schedule(
            base, args.rounds, seed=args.churn_seed,
            leave_frac=args.leave_frac, join_frac=args.join_frac,
            edge_flips=args.edge_flips, rejoin_prob=args.rejoin_prob,
        )
    network = ChurnNetwork(base, churn) if churn is not None else base
    params = PRESETS[args.preset]().with_overrides(
        collection_estimate_factor=0.25, mspg_enabled=False,
    )
    if byz_nodes:
        # insiders need the authenticated fault stack: the continuous
        # driver reads network.byzantine to arm conviction/quarantine
        from repro.resilience.byzantine import ByzantineSet
        from repro.resilience.network import DynamicFaultNetwork
        from repro.resilience.schedule import FaultSchedule

        network = DynamicFaultNetwork(
            network,
            schedule=FaultSchedule(),
            seed=args.seed,
            byzantine=ByzantineSet(
                byz_nodes, args.byzantine_mode, authentication=True,
            ),
        )
        params = params.with_overrides(authentication=True)
    process = PoissonProcess(
        rate=args.rate, size_bits=required_packet_bits(base.n),
        seed=args.seed,
    )
    policy = ContinuousPolicy(
        queue_capacity=args.queue_capacity,
        drop_policy=args.drop_policy,
        slo_rounds=args.slo_rounds,
    )
    result = ContinuousBroadcast(
        network, process, policy=policy,
        params=params,
        seed=args.seed + 1,
    ).run(args.rounds)

    summary = result.summary()
    if adv_spec is not None:
        summary["adversarial_churn"] = adv_spec.to_json()
    if byz_nodes:
        summary["byzantine_nodes"] = byz_nodes
    if args.json:
        import json as _json

        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        churn_note = (
            f"{len(churn.events)} churn events"
            + (f" ({args.adversarial_churn} adversary)"
               if adv_spec is not None else "")
            if churn is not None
            else "static topology"
        )
        rows = [
            ["rounds", summary["rounds"]],
            ["arrivals", summary["arrivals"]],
            ["delivered", summary["delivered"]],
            ["throughput (pkt/round)", f"{summary['throughput']:.5f}"],
            ["dropped (queue/handoff/retry)",
             f"{summary['dropped_queue']}/{summary['dropped_handoff']}"
             f"/{summary['dropped_retry']}"],
            ["rejected (backpressure)", summary["rejected"]],
            ["in flight", summary["in_flight"]],
            ["max queue length", summary["max_queue_len"]],
            ["dispatches / repairs / restructures",
             f"{summary['dispatches']}/{summary['repairs']}"
             f"/{summary['restructures']}"],
            ["handoffs", summary["handoffs"]],
            [f"SLO violations (> {policy.slo_rounds} rounds)",
             summary["slo_violations"]],
            ["latency p50 / p99 (rounds)",
             f"{summary['latency_p50']:.0f} / "
             f"{summary['latency_p99']:.0f}"],
            ["accounting exact",
             "yes" if summary["accounting_exact"] else "NO"],
        ]
        if byz_nodes:
            rows += [
                ["insiders (byzantine)",
                 f"{len(byz_nodes)} ({args.byzantine_mode})"],
                ["convictions", len(summary["convictions"])],
                ["mis-decodes / mis-attributions",
                 f"{summary['mis_decodes']}"
                 f"/{summary['mis_attributions']}"],
                ["dropped (quarantine)", summary["dropped_quarantine"]],
            ]
        print(render_table(
            ["metric", "value"], rows,
            title=f"Continuous broadcast on {base.name} "
                  f"(rate={args.rate}, {churn_note})",
        ))
    failures = []
    if not summary["accounting_exact"]:
        failures.append("accounting identity broken")
    if summary["slo_violations"] > args.max_slo_violations:
        failures.append(
            f"{summary['slo_violations']} SLO violation(s) > "
            f"allowed {args.max_slo_violations}"
        )
    if summary.get("mis_decodes", 0):
        failures.append(f"{summary['mis_decodes']} mis-decode(s)")
    if summary.get("mis_attributions", 0):
        failures.append(
            f"{summary['mis_attributions']} mis-attribution(s)"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _add_fuzz_args(parser: argparse.ArgumentParser) -> None:
    """Trial-defining flags shared by ``chaos fuzz`` and ``campaign run``.

    Dests use the ``fz_`` prefix where the parent ``chaos`` parser has
    already planted a default for the natural name (see the subparser
    comment in :func:`main`); ``campaign run`` reuses them unchanged so
    the two front ends build identical :class:`CampaignConfig`\\ s.
    """
    parser.add_argument("--trials", type=int, default=20,
                        help="number of consecutive fuzz seeds")
    parser.add_argument("--seed", dest="fz_seed", type=int, default=0,
                        help="base seed (trial i uses seed base+i)")
    parser.add_argument("--profile", default="medium",
                        choices=["light", "medium", "heavy"],
                        help="fault-intensity profile")
    parser.add_argument("--topology", dest="fz_topology", default="grid",
                        choices=["line", "ring", "star", "clique", "grid",
                                 "tree", "rgg", "gnp"])
    parser.add_argument("--n", dest="fz_n", type=int, default=16)
    parser.add_argument("--rows", dest="fz_rows", type=int, default=4)
    parser.add_argument("--cols", dest="fz_cols", type=int, default=4)
    parser.add_argument("--branching", dest="fz_branching", type=int,
                        default=2)
    parser.add_argument("--depth", dest="fz_depth", type=int, default=4)
    parser.add_argument("--topology-seed", dest="fz_topology_seed",
                        type=int, default=0)
    parser.add_argument("--k", dest="fz_k", type=int, default=6,
                        help="packets per trial")
    parser.add_argument("--workload", dest="fz_workload", default="uniform",
                        choices=["uniform", "single", "hotspot", "all"])
    parser.add_argument("--preset", dest="fz_preset", default="default",
                        choices=sorted(PRESETS))
    parser.add_argument("--ablation", default="none",
                        choices=["none", "no_repair", "leaky_churn",
                                 "amnesiac_blacklist"],
                        help="run with a known-broken configuration "
                             "(CI sanity check that the fuzzer catches it)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker processes (default: one "
                             "per CPU, capped at 16)")
    parser.add_argument("--round-bound-factor", type=float, default=200.0,
                        help="liveness oracle: allowed multiple of the "
                             "Theorem 2 round bound for clean runs")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of violating campaigns")
    parser.add_argument("--json", dest="fz_json", action="store_true",
                        help="emit the campaign summary as JSON")


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """Execution-policy flags for the supervised campaign orchestrator.

    None of these affect the result manifest — reference and recovery
    runs with different supervision settings stay byte-identical.
    """
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="attempts per seed before quarantine")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-trial wall-clock limit in seconds "
                             "(hung workers are killed and the seed "
                             "retried)")
    parser.add_argument("--backoff-base", type=float, default=0.05,
                        help="first retry delay in seconds (doubles "
                             "per attempt)")
    parser.add_argument("--backoff-max", type=float, default=2.0,
                        help="retry delay ceiling in seconds")
    parser.add_argument("--inject-worker-faults", action="store_true",
                        help="self-test: randomly SIGKILL/hang/poison "
                             "this campaign's own workers to prove the "
                             "supervision layer end to end")
    parser.add_argument("--inject-kill-prob", type=float, default=0.3,
                        help="P(worker kills itself on a seed's first "
                             "attempt)")
    parser.add_argument("--inject-hang-prob", type=float, default=0.0,
                        help="P(worker hangs on a seed's first attempt; "
                             "pair with --task-timeout)")
    parser.add_argument("--inject-poison-frac", type=float, default=0.0,
                        help="fraction of seeds that deterministically "
                             "fail (must end up quarantined)")
    parser.add_argument("--inject-seed", type=int, default=0,
                        help="seed for the injected-fault draws")
    parser.add_argument("--inject-hang-seconds", type=float, default=30.0,
                        help="how long an injected hang sleeps")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiple-message broadcast in radio networks "
                    "(Khabbazian & Kowalski, PODC 2011) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print topology parameters")
    _add_common(info)
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run", help="run the paper's algorithm")
    _add_run_args(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="compare against baselines")
    _add_run_args(compare)
    compare.set_defaults(func=cmd_compare)

    chaos = sub.add_parser(
        "chaos",
        help="self-healing broadcast under a random crash schedule, "
             "plus fuzz/replay subcommands",
    )
    _add_run_args(chaos, topology_required=False)
    chaos.add_argument("--crash-frac", type=float, default=0.1,
                       help="fraction of eligible nodes to crash")
    chaos.add_argument("--crash-stage", default="bfs",
                       choices=["election", "bfs", "collection",
                                "dissemination"],
                       help="crash when this stage completes")
    chaos.add_argument("--crash-round", type=int, default=None,
                       help="crash at this absolute round instead of a "
                            "stage boundary")
    chaos.add_argument("--allow-leader-crash", action="store_true",
                       help="let the expected leader be crashed too "
                            "(exercises re-election)")
    chaos.add_argument("--jam-prob", type=float, default=0.0,
                       help="reactive jammer: drop each reception in a "
                            "busy round with this probability")
    chaos.add_argument("--corrupt-rate", type=float, default=0.0,
                       help="corruption channel: flip a bit in each "
                            "delivered packet with this probability")
    chaos.add_argument("--jam-budget", type=int, default=None,
                       help="budgeted jammer: total rounds it may "
                            "fully jam, spent on the busiest rounds")
    chaos.add_argument("--byzantine-frac", type=float, default=0.0,
                       help="fraction of eligible nodes running a "
                            "Byzantine behavior mode (authentication "
                            "is forced on when > 0)")
    chaos.add_argument("--byzantine-mode", default="row_poison",
                       choices=list(BYZANTINE_MODES),
                       help="which insider behavior the Byzantine "
                            "nodes run")
    chaos.add_argument("--json", action="store_true",
                       help="emit the degradation report as JSON "
                            "instead of a table (exit codes unchanged)")
    chaos.set_defaults(func=cmd_chaos)

    # Nested subcommands.  Their flags use private dests (fz_*/rp_*)
    # because the parent chaos parser has already planted defaults for
    # the shared names in the namespace, and argparse skips a
    # subparser default whenever the dest is present.
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=False)
    fuzz = chaos_sub.add_parser(
        "fuzz",
        help="run a seeded fuzzing campaign with invariant oracles",
    )
    _add_fuzz_args(fuzz)
    fuzz.add_argument("--artifact-dir", default="chaos-artifacts",
                      help="directory for failure bundles")
    fuzz.add_argument("--checkpoint-dir", default=None,
                      help="journal progress here; an interrupted "
                           "campaign continues with "
                           "'repro campaign resume DIR'")

    replay = chaos_sub.add_parser(
        "replay",
        help="re-execute a failure artifact bit-for-bit",
    )
    replay.add_argument("artifact", help="path to a failure bundle")
    replay.add_argument("--which", default="original",
                        choices=["original", "shrunk"],
                        help="replay the original or the shrunk campaign")
    replay.add_argument("--json", dest="rp_json", action="store_true",
                        help="emit the replay report as JSON")

    campaign = sub.add_parser(
        "campaign",
        help="checkpointed, resumable fuzz campaigns under worker "
             "supervision (survives kill -9; resume is byte-identical)",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    crun = campaign_sub.add_parser(
        "run",
        help="run a supervised campaign, journaling every trial",
    )
    crun.add_argument("--dir", required=True,
                      help="checkpoint directory (journal.jsonl + "
                           "manifest.json)")
    _add_fuzz_args(crun)
    _add_supervision_args(crun)
    crun.add_argument("--artifact-dir", default=None,
                      help="failure-bundle directory "
                           "(default: DIR/artifacts)")
    crun.set_defaults(func=cmd_campaign)

    cresume = campaign_sub.add_parser(
        "resume",
        help="continue an interrupted campaign from its journal",
    )
    cresume.add_argument("dir", help="checkpoint directory")
    cresume.add_argument("--workers", type=int, default=None)
    _add_supervision_args(cresume)
    cresume.add_argument("--artifact-dir", default=None,
                         help="failure-bundle directory "
                              "(default: DIR/artifacts)")
    cresume.add_argument("--no-shrink", action="store_true",
                         help="skip delta-debugging of violating "
                              "campaigns")
    cresume.add_argument("--json", dest="fz_json", action="store_true",
                         help="emit the campaign summary as JSON")
    cresume.set_defaults(func=cmd_campaign)

    cstatus = campaign_sub.add_parser(
        "status",
        help="inspect a checkpoint directory without running anything",
    )
    cstatus.add_argument("dir", help="checkpoint directory")
    cstatus.add_argument("--json", dest="fz_json", action="store_true",
                         help="emit the status as JSON")
    cstatus.set_defaults(func=cmd_campaign)

    dynamic = sub.add_parser(
        "dynamic", help="batched dynamic broadcast under Poisson arrivals"
    )
    _add_common(dynamic)
    dynamic.add_argument("--rate", type=float, default=0.001,
                         help="Poisson arrival rate (packets/round)")
    dynamic.add_argument("--horizon", type=int, default=100_000,
                         help="arrival horizon in rounds")
    dynamic.add_argument("--seed", type=int, default=0)
    dynamic.add_argument("--preset", default="default",
                         choices=sorted(PRESETS))
    dynamic.set_defaults(func=cmd_dynamic)

    cont = sub.add_parser(
        "continuous",
        help="open-ended continuous broadcast under churn with SLOs "
             "and backpressure",
    )
    _add_common(cont)
    cont.add_argument("--rate", type=float, default=0.003,
                      help="Poisson arrival rate (packets/round)")
    cont.add_argument("--rounds", type=int, default=5000,
                      help="rounds to run the open-ended stream")
    cont.add_argument("--seed", type=int, default=0)
    cont.add_argument("--preset", default="default",
                      choices=sorted(PRESETS))
    cont.add_argument("--leave-frac", type=float, default=0.0,
                      help="fraction of nodes that depart over the run")
    cont.add_argument("--join-frac", type=float, default=0.0,
                      help="fraction of extra nodes that join mid-run")
    cont.add_argument("--edge-flips", type=int, default=0,
                      help="number of random edge sever/restore events")
    cont.add_argument("--rejoin-prob", type=float, default=0.8,
                      help="probability a leaver rejoins later")
    cont.add_argument("--churn-seed", type=int, default=0,
                      help="seed for the random churn schedule")
    cont.add_argument("--queue-capacity", type=int, default=16,
                      help="per-node ingress queue bound")
    cont.add_argument("--drop-policy", default="drop_newest",
                      choices=["drop_newest", "drop_oldest", "reject"])
    cont.add_argument("--slo-rounds", type=int, default=4096,
                      help="delivery-latency SLO threshold in rounds")
    cont.add_argument("--byzantine-frac", type=float, default=0.0,
                      help="fraction of nodes acting as authenticated "
                           "insiders (0 disables)")
    cont.add_argument("--byzantine-mode", default="row_poison",
                      help="insider behavior (see repro.resilience."
                           "byzantine.BYZANTINE_MODES)")
    cont.add_argument("--adversarial-churn", default=None,
                      choices=["leader_target", "cut_edges",
                               "partition_sync", "combined"],
                      help="replace random churn with a budgeted "
                           "worst-case schedule of this strategy")
    cont.add_argument("--churn-budget", type=int, default=16,
                      help="adversarial churn: max total events")
    cont.add_argument("--repair-window", type=int, default=64,
                      help="adversarial churn: repair window the "
                           "adversary times itself against")
    cont.add_argument("--max-slo-violations", type=int, default=0,
                      help="exit nonzero when SLO violations exceed "
                           "this count")
    cont.add_argument("--json", action="store_true",
                      help="emit the summary as JSON")
    cont.set_defaults(func=cmd_continuous)

    serve = sub.add_parser(
        "serve",
        help="long-running job service: durable queue, supervised "
             "workers, admission control, load shedding, drain on "
             "SIGTERM (survives kill -9)",
    )
    serve.add_argument("--dir", default=None,
                       help="service directory (journal.jsonl, "
                            "manifest.json, spool/, results/)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent worker processes")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bounded dispatch queue depth")
    serve.add_argument("--queue-policy", default="reject",
                       choices=["reject", "drop_oldest"],
                       help="what to do when the queue is full: shed "
                            "the new job, or evict the lowest-priority "
                            "oldest one")
    serve.add_argument("--tenant-rate", type=float, default=None,
                       help="per-tenant admission rate in jobs/sec "
                            "(token bucket; default: unlimited)")
    serve.add_argument("--tenant-burst", type=float, default=8.0,
                       help="per-tenant token-bucket burst size")
    serve.add_argument("--max-attempts", type=int, default=4,
                       help="attempts per job before it is failed")
    serve.add_argument("--task-timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="max seconds to wait for in-flight jobs "
                            "on drain (overdue jobs re-queue on the "
                            "next start)")
    serve.add_argument("--idle-exit", action="store_true",
                       help="exit 0 once spool, queue, and workers are "
                            "all empty (batch mode; default: run "
                            "forever)")
    serve.add_argument("--self-test", action="store_true",
                       help="run the service chaos self-test (worker "
                            "kills, daemon kill -9, torn journal tail, "
                            "duplicate replay) and exit")
    serve.add_argument("--inject-worker-faults", action="store_true",
                       help="self-test: randomly SIGKILL/hang/poison "
                            "this service's own workers")
    serve.add_argument("--inject-kill-prob", type=float, default=0.3)
    serve.add_argument("--inject-hang-prob", type=float, default=0.0)
    serve.add_argument("--inject-poison-frac", type=float, default=0.0)
    serve.add_argument("--inject-seed", type=int, default=0)
    serve.add_argument("--inject-hang-seconds", type=float, default=30.0)
    serve.add_argument("--json", action="store_true",
                       help="emit the final snapshot as JSON")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="spool a job for a running (or future) 'repro serve' "
             "daemon; idempotent by job id",
    )
    submit.add_argument("--dir", required=True,
                        help="service directory (the daemon's --dir)")
    submit.add_argument("--file", default=None,
                        help="JSON file holding one job spec or a list "
                             "of them (overrides the flag-built spec)")
    submit.add_argument("--id", default=None,
                        help="job id / idempotency key (default: "
                             "derived from kind+tenant+seed+params)")
    submit.add_argument("--kind", default="noop",
                        choices=["noop", "simulation", "chaos",
                                 "continuous"])
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=1,
                        help="dispatch priority; in degraded mode the "
                             "lowest priorities are shed first")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--count", type=int, default=1,
                        help="submit N jobs with seeds seed..seed+N-1")
    submit.add_argument("--param", action="append", default=[],
                        help="kind-specific parameter as key=value "
                             "(value parsed as JSON when possible); "
                             "repeatable")
    submit.add_argument("--json", action="store_true")
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser(
        "jobs",
        help="inspect a service directory: counters, accounting "
             "identity, quarantines, retries",
    )
    jobs.add_argument("dir", help="service directory")
    jobs.add_argument("--json", action="store_true",
                      help="emit the status as JSON")
    jobs.set_defaults(func=cmd_jobs)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
