"""Exact contention analysis of the Decay schedule.

For the paper's ("independent") Decay variant, per-slot transmission
events are independent across nodes and slots, so the probability that a
receiver with ``t`` contending neighbors hears a message admits closed
forms:

- slot ``s`` (probability ``p_s = 2^-(s+1)``) succeeds with probability
  ``t · p_s · (1 - p_s)^(t-1)``;
- an epoch of ``S`` slots succeeds with probability
  ``1 - Π_s (1 - t·p_s·(1-p_s)^(t-1))``.

These exact curves complement the analytic ``1/(2e)`` lower bound and
the Monte-Carlo measurements of experiment E12, and let budget planners
(`AlgorithmParameters`) be audited against exact reception rates instead
of bounds.
"""

from __future__ import annotations

import math
from typing import List

from repro.primitives.decay import decay_slots, transmission_probabilities


def slot_success_probability(contenders: int, p: float) -> float:
    """Probability exactly one of ``contenders`` iid Bernoulli(p)
    transmitters fires: ``t·p·(1-p)^(t-1)``."""
    if contenders < 0:
        raise ValueError("contenders must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if contenders == 0:
        return 0.0
    return contenders * p * (1.0 - p) ** (contenders - 1)


def epoch_success_probability(
    contenders: int, num_slots: int
) -> float:
    """Exact probability that an independent-variant Decay epoch of
    ``num_slots`` slots delivers to a receiver with ``contenders``
    transmitting neighbors."""
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    failure = 1.0
    for p in transmission_probabilities(num_slots):
        failure *= 1.0 - slot_success_probability(contenders, p)
    return 1.0 - failure


def epoch_success_curve(max_degree: int) -> List[float]:
    """Per-epoch success probability for every contender count
    ``1..max_degree`` at the standard slot count for that Δ."""
    slots = decay_slots(max_degree)
    return [
        epoch_success_probability(t, slots) for t in range(1, max_degree + 1)
    ]


def worst_case_epoch_success(max_degree: int) -> float:
    """The minimum per-epoch success probability over 1..Δ contenders —
    the constant that actually enters every budget in the library."""
    return min(epoch_success_curve(max_degree))


def epochs_for_target(
    contenders: int, num_slots: int, target: float
) -> int:
    """Epochs needed so the reception probability reaches ``target``
    under the exact per-epoch success rate: ``⌈log(1-target)/log(1-q)⌉``."""
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    q = epoch_success_probability(contenders, num_slots)
    if q >= 1.0:
        return 1
    if q <= 0.0:
        raise ValueError("zero per-epoch success; no budget suffices")
    return math.ceil(math.log(1.0 - target) / math.log(1.0 - q))
