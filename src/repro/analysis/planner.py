"""Budget planning from the exact contention curves.

The default :class:`AlgorithmParameters` factors are fixed constants; this
module derives budgets from the *exact* Decay success probabilities
(:mod:`repro.analysis.contention`) and explicit failure targets, replacing
"a sufficiently large constant" with arithmetic:

- :func:`epochs_to_receive_whp` — epochs after which a receiver with at
  most Δ contending neighbors has heard something with probability
  ``1 - failure_prob`` (geometric amplification of the exact worst-case
  per-epoch rate);
- :func:`bgi_epoch_budget` — a broadcast budget with the classic
  ``D + amplification`` shape: the wave needs D progress steps plus
  enough slack that, by a union bound over nodes, every per-hop delay is
  covered;
- :func:`plan_parameters` — an :class:`AlgorithmParameters` whose BGI/BFS
  factors are backed by those budgets for a requested end-to-end failure
  target.

The planner is deliberately conservative (union bounds); experiments can
confirm its budgets empirically (see ``tests/test_planner.py``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.contention import (
    epochs_for_target,
    worst_case_epoch_success,
)
from repro.core.config import AlgorithmParameters, log2n
from repro.primitives.decay import decay_slots
from repro.radio.network import RadioNetwork


def epochs_to_receive_whp(max_degree: int, failure_prob: float) -> int:
    """Epochs so a receiver with 1..Δ contenders hears something with
    probability at least ``1 - failure_prob`` (exact worst-case rate)."""
    if not 0.0 < failure_prob < 1.0:
        raise ValueError("failure_prob must be in (0, 1)")
    slots = decay_slots(max_degree)
    q = worst_case_epoch_success(max_degree)
    # epochs_for_target works per contender count; take the worst one by
    # using the worst-case rate directly:
    return max(
        1, math.ceil(math.log(failure_prob) / math.log(1.0 - q))
    )


def bgi_epoch_budget(network: RadioNetwork, failure_prob: float) -> int:
    """Epoch budget for one BGI broadcast to inform every node with
    probability ``≥ 1 - failure_prob``.

    Shape: ``D`` progress steps plus per-hop slack; a union bound over the
    ``n`` nodes sets each hop's allowed failure to ``failure_prob / n``.
    """
    n = max(network.n, 2)
    per_hop = epochs_to_receive_whp(
        network.max_degree, failure_prob / n
    )
    return network.diameter + per_hop * max(1, math.ceil(log2n(n)))


def plan_parameters(
    network: RadioNetwork,
    failure_prob: float = 0.01,
    base: Optional[AlgorithmParameters] = None,
) -> AlgorithmParameters:
    """Derive an :class:`AlgorithmParameters` for a failure target.

    BGI (election probes, ALARM) and BFS phase budgets come from the
    exact contention curves; the remaining knobs inherit from ``base``
    (default: the library defaults).
    """
    base = base or AlgorithmParameters()
    n = max(network.n, 2)

    budget = bgi_epoch_budget(network, failure_prob)
    # AlgorithmParameters expresses the budget as factor · (D + log2 n):
    bgi_factor = budget / (network.diameter + log2n(n))

    # BFS: each phase must deliver to the next layer; per node allow
    # failure_prob / n and express as factor · log2 n epochs.
    per_hop = epochs_to_receive_whp(network.max_degree, failure_prob / n)
    bfs_factor = per_hop / log2n(n)

    return base.with_overrides(
        bgi_epochs_factor=max(base.bgi_epochs_factor, bgi_factor),
        bfs_epochs_factor=max(base.bfs_epochs_factor, bfs_factor),
    )
