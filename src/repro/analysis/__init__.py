"""Analytical companions to the paper's proofs.

- :mod:`repro.analysis.chernoff` — Lemmas 1 and 2 (Chernoff-type tail
  bounds) as executable calculators plus Monte-Carlo estimators used to
  validate them empirically (experiment E10).
- :mod:`repro.analysis.rank_bounds` — Lemma 3 (full rank of a random
  binary matrix): the sufficient row count, the *exact* full-rank
  probability formula, and Monte-Carlo estimation (experiment E9).
- :mod:`repro.analysis.complexity` — the paper's round-count predictors
  (Theorems 1-2, Fact 1, Lemmas 4-7) used to check measured *shapes*.
- :mod:`repro.analysis.fitting` — least-squares fits of measurements to
  predictors, with R², for the EXPERIMENTS.md tables.
"""

from repro.analysis.chernoff import (
    lemma1_round_budget,
    lemma1_tail_bound,
    lemma2_threshold,
    monte_carlo_bernoulli_tail,
    monte_carlo_geometric_tail,
)
from repro.analysis.contention import (
    epoch_success_curve,
    epoch_success_probability,
    epochs_for_target,
    slot_success_probability,
    worst_case_epoch_success,
)
from repro.analysis.complexity import (
    bii_total_bound,
    fact1_leader_election_bound,
    lemma4_grab_bound,
    lemma5_collection_bound,
    lemma6_forward_receptions,
    lemma7_dissemination_bound,
    theorem1_bfs_bound,
    theorem2_total_bound,
)
from repro.analysis.fitting import FitResult, fit_linear_predictor, fit_ratio
from repro.analysis.lower_bounds import (
    deterministic_k_broadcast_lower_bound,
    oblivious_schedule_lower_bound,
    optimality_gap,
    randomized_k_broadcast_lower_bound,
    randomized_single_broadcast_lower_bound,
)
from repro.analysis.planner import (
    bgi_epoch_budget,
    epochs_to_receive_whp,
    plan_parameters,
)
from repro.analysis.overhead import (
    AirtimeReport,
    airtime_report,
    coded_message_bits,
    coding_overhead_ratio,
    plain_message_bits,
)
from repro.analysis.rank_bounds import (
    exact_full_rank_probability,
    lemma3_required_rows,
    monte_carlo_full_rank_probability,
)

__all__ = [
    "AirtimeReport",
    "FitResult",
    "airtime_report",
    "bgi_epoch_budget",
    "bii_total_bound",
    "coded_message_bits",
    "coding_overhead_ratio",
    "deterministic_k_broadcast_lower_bound",
    "epoch_success_curve",
    "epoch_success_probability",
    "epochs_for_target",
    "epochs_to_receive_whp",
    "exact_full_rank_probability",
    "fact1_leader_election_bound",
    "fit_linear_predictor",
    "fit_ratio",
    "lemma1_round_budget",
    "lemma1_tail_bound",
    "lemma2_threshold",
    "lemma3_required_rows",
    "lemma4_grab_bound",
    "lemma5_collection_bound",
    "lemma6_forward_receptions",
    "lemma7_dissemination_bound",
    "monte_carlo_bernoulli_tail",
    "monte_carlo_full_rank_probability",
    "monte_carlo_geometric_tail",
    "oblivious_schedule_lower_bound",
    "optimality_gap",
    "plain_message_bits",
    "plan_parameters",
    "randomized_k_broadcast_lower_bound",
    "randomized_single_broadcast_lower_bound",
    "slot_success_probability",
    "theorem1_bfs_bound",
    "theorem2_total_bound",
    "worst_case_epoch_success",
]
