"""Lemma 3: rank of a random binary matrix.

Lemma 3 states that an ``l × w`` matrix of iid fair bits has full (column)
rank with probability at least ``1 - ε`` whenever
``l ≥ 2(w + 2) + 8·ln(1/ε)``.

Besides the sufficient row count, this module provides the *exact*
full-column-rank probability (a classical product formula), so experiment
E9 can compare three curves: Lemma 3's requirement, the exact probability,
and a Monte-Carlo estimate from the library's own GF(2) rank routine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.coding.gf2 import gf2_rank_dense, random_binary_matrix
from repro.radio.rng import SeedLike, make_rng


def lemma3_required_rows(w: int, eps: float) -> int:
    """The sufficient row count ``⌈2(w+2) + 8·ln(1/ε)⌉`` from Lemma 3."""
    if w < 1:
        raise ValueError("w must be positive")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return math.ceil(2 * (w + 2) + 8 * math.log(1 / eps))


def exact_full_rank_probability(rows: int, cols: int) -> float:
    """Exact probability that an ``l × w`` iid fair-bit matrix has full
    column rank (``rank = w``), for ``l ≥ w``; 0 when ``l < w``.

    Classical formula: ``Π_{i=0}^{w-1} (1 - 2^{i-l})``.
    """
    if cols < 1 or rows < 0:
        raise ValueError("rows/cols out of range")
    if rows < cols:
        return 0.0
    prob = 1.0
    for i in range(cols):
        prob *= 1.0 - 2.0 ** (i - rows)
    return prob


def monte_carlo_full_rank_probability(
    rows: int,
    cols: int,
    trials: int = 2000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of the full-column-rank probability, computed
    with the library's own GF(2) elimination (so it also exercises
    :func:`repro.coding.gf2.gf2_rank_dense`)."""
    rng = make_rng(seed)
    full = 0
    for _ in range(trials):
        m = random_binary_matrix(rows, cols, seed=rng)
        if gf2_rank_dense(m) == cols:
            full += 1
    return full / trials


def expected_rows_until_full_rank(cols: int) -> float:
    """Expected number of iid random rows needed to reach full rank:
    ``Σ_{i=0}^{w-1} 1/(1 - 2^{i-w})`` — at most ``w + 2`` (used in the
    paper's proof of Lemma 3)."""
    return sum(1.0 / (1.0 - 2.0 ** (i - cols)) for i in range(cols))
