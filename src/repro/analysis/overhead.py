"""Message-size and air-time accounting.

The paper bounds the coded message size: a FORWARD transmission carries
the ``b``-bit XOR payload plus a ``⌈log n⌉``-bit subset header, and since
``b ≥ log n`` "the size of the new message is at most twice the size of
any message in M".  This module makes that claim executable and provides
air-time (transmission-count and bit-count) accounting so experiments can
compare algorithms by energy, not just rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import log2n
from repro.core.multibroadcast import MultiBroadcastResult


def plain_message_bits(payload_bits: int) -> int:
    """Over-the-air size of an uncoded packet transmission.

    A plain packet carries its payload plus a ``⌈log k⌉``-ish identifier;
    the paper folds identifiers into ``b`` (a packet "includes at least
    one ID"), so the plain size is just ``payload_bits``.
    """
    if payload_bits < 1:
        raise ValueError("payload_bits must be positive")
    return payload_bits


def coded_message_bits(payload_bits: int, group_size: int) -> int:
    """Over-the-air size of a FORWARD coded transmission: payload XOR
    (``b`` bits) + subset header (``group_size ≤ ⌈log n⌉`` bits)."""
    if payload_bits < 1 or group_size < 1:
        raise ValueError("payload_bits and group_size must be positive")
    return payload_bits + group_size


def coding_overhead_ratio(n: int, payload_bits: Optional[int] = None) -> float:
    """Coded/plain message-size ratio for a network of ``n`` nodes.

    With the model's minimum payload ``b = ⌈log2 n⌉`` this is exactly 2;
    for larger payloads it approaches 1.  The paper's claim is that it
    never exceeds 2 (requires ``b ≥ log2 n``).
    """
    width = max(1, math.ceil(log2n(n)))
    b = payload_bits if payload_bits is not None else width
    if b < width:
        raise ValueError(
            f"payload_bits={b} violates the model assumption b >= log2 n={width}"
        )
    return coded_message_bits(b, width) / plain_message_bits(b)


@dataclass(frozen=True)
class AirtimeReport:
    """Transmission/bit totals of one multi-broadcast execution."""

    total_transmissions: int
    dissemination_coded: int
    dissemination_plain: int
    payload_bits: int
    group_width: int

    @property
    def dissemination_bits(self) -> int:
        """Bits put on the air by Stage 4."""
        return (
            self.dissemination_coded
            * coded_message_bits(self.payload_bits, self.group_width)
            + self.dissemination_plain * plain_message_bits(self.payload_bits)
        )

    def transmissions_per_packet(self, k: int) -> float:
        return self.total_transmissions / max(k, 1)


def airtime_report(
    result: MultiBroadcastResult, payload_bits: int
) -> AirtimeReport:
    """Build an :class:`AirtimeReport` from a traced execution.

    ``total_transmissions`` requires the algorithm to have been
    constructed with ``keep_trace=True`` (every stage's transmissions go
    through the shared trace); without a trace it is reported as -1 and
    only the dissemination counters are available.
    """
    if result.dissemination is None:
        raise ValueError("result has no dissemination stage (failed early?)")
    d = result.dissemination
    total = (
        result.trace.total_transmissions if result.trace is not None else -1
    )
    return AirtimeReport(
        total_transmissions=total,
        dissemination_coded=d.coded_transmissions,
        dissemination_plain=d.plain_transmissions,
        payload_bits=payload_bits,
        group_width=d.group_width,
    )
