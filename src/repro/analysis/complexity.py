"""The paper's round-count predictors, as explicit functions of (n, D, Δ, k).

These are the asymptotic expressions with all constants set to 1; the
experiments divide measured round counts by these predictors and check the
ratio is roughly flat across a sweep (the bound *shape* holds).  ``log``
means ``log2`` clamped at 1 throughout, matching
:func:`repro.core.config.log2n`.
"""

from __future__ import annotations

from repro.core.config import log2n


def _log_delta(delta: int) -> float:
    return max(1.0, log2n(max(delta, 2)))


def fact1_leader_election_bound(n: int, diameter: int, delta: int) -> float:
    """Fact 1: leader election in ``O((D + log n)·log n·logΔ)``."""
    ln = log2n(n)
    return (diameter + ln) * ln * _log_delta(delta)


def theorem1_bfs_bound(n: int, diameter: int, delta: int) -> float:
    """Theorem 1: distributed BFS in ``O(D·log n·logΔ)``."""
    return diameter * log2n(n) * _log_delta(delta)


def lemma4_grab_bound(n: int, diameter: int, x: int) -> float:
    """Lemma 4: GRAB(x) runs in ``O(x + D·log x + log²n)``."""
    ln = log2n(n)
    return x + diameter * max(1.0, log2n(max(x, 2))) + ln * ln


def lemma5_collection_bound(n: int, diameter: int, k: int) -> float:
    """Lemma 5: Stage 3 in ``O(k + (D + log n)·log n)``."""
    ln = log2n(n)
    return k + (diameter + ln) * ln


def lemma6_forward_receptions(n: int, group_size: int) -> float:
    """Lemma 6 regime: ``O(log n)`` receptions suffice to decode a group
    of ``≤ ⌈log n⌉`` packets (via Lemma 3)."""
    return max(group_size + 2.0, log2n(n))


def lemma7_dissemination_bound(n: int, diameter: int, delta: int, k: int) -> float:
    """Lemma 7: Stage 4 in ``O(D·log n·logΔ + k·logΔ)``."""
    ln = log2n(n)
    ld = _log_delta(delta)
    return diameter * ln * ld + k * ld


def theorem2_total_bound(n: int, diameter: int, delta: int, k: int) -> float:
    """Theorem 2: total ``O(k·logΔ + (D + log n)·log n·logΔ)``."""
    ln = log2n(n)
    ld = _log_delta(delta)
    return k * ld + (diameter + ln) * ln * ld


def theorem2_amortized_bound(delta: int) -> float:
    """The headline amortized cost per packet: ``O(logΔ)``."""
    return _log_delta(delta)


def bii_total_bound(n: int, diameter: int, delta: int, k: int) -> float:
    """The BII 1993 bound the paper improves on:
    ``O(k·log n·logΔ + (D + n/log n)·log n·logΔ)``."""
    ln = log2n(n)
    ld = _log_delta(delta)
    return k * ln * ld + (diameter + n / ln) * ln * ld


def bii_amortized_bound(n: int, delta: int) -> float:
    """BII's amortized cost per packet: ``O(log n·logΔ)``."""
    return log2n(n) * _log_delta(delta)
