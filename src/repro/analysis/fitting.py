"""Least-squares fits of measured round counts against the paper's predictors.

The reproduction cannot match the authors' absolute constants (there are
none — the bounds are asymptotic), so experiments check *shape*: measured
≈ c · predictor for a stable constant ``c``.  :func:`fit_linear_predictor`
estimates ``c`` and R²; :func:`fit_ratio` reports the per-point ratios and
their spread (a flat ratio ⇒ the shape holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """Outcome of a one-parameter linear fit ``measured ≈ c · predictor``.

    Attributes
    ----------
    coefficient:
        The fitted constant ``c``.
    r_squared:
        Goodness of fit of ``c · predictor`` to the measurements
        (1 = perfect shape match).
    ratios:
        Per-point ``measured / predictor`` values.
    ratio_spread:
        ``max(ratios) / min(ratios)`` — the flatness criterion; a perfect
        shape match across the sweep gives 1.
    """

    coefficient: float
    r_squared: float
    ratios: List[float]
    ratio_spread: float


def fit_linear_predictor(
    measured: Sequence[float], predicted: Sequence[float]
) -> FitResult:
    """Fit ``measured ≈ c · predicted`` through the origin."""
    y = np.asarray(measured, dtype=float)
    x = np.asarray(predicted, dtype=float)
    if y.shape != x.shape or y.ndim != 1 or len(y) == 0:
        raise ValueError("measured and predicted must be equal-length 1-D")
    if (x <= 0).any():
        raise ValueError("predictor values must be positive")

    c = float(np.dot(x, y) / np.dot(x, x))
    residuals = y - c * x
    ss_res = float(np.dot(residuals, residuals))
    ss_tot = float(np.dot(y - y.mean(), y - y.mean()))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    ratios = (y / x).tolist()
    spread = max(ratios) / min(ratios) if min(ratios) > 0 else float("inf")
    return FitResult(
        coefficient=c,
        r_squared=r_squared,
        ratios=ratios,
        ratio_spread=spread,
    )


def fit_ratio(measured: Sequence[float], predicted: Sequence[float]) -> List[float]:
    """Just the per-point ``measured / predicted`` ratios."""
    return [m / p for m, p in zip(measured, predicted)]
