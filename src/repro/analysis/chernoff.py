"""Lemmas 1 and 2: Chernoff-type tail bounds, executable.

Lemma 1 (Bernoulli sums): with ``r = ⌊(3d + 2τ)/p⌋`` independent trials of
success probability ``p``, the probability of fewer than ``d`` successes is
at most ``e^{-τ}``.

Lemma 2 (geometric sums): for independent geometrics ``X_i`` with
parameters ``p_i``, ``Pr(ΣX_i ≥ 2μ + 4·ln(1/ε)/p_min) ≤ ε`` where
``μ = Σ 1/p_i``.

Both are exposed as calculators (budget/threshold for a target failure
probability) and validated by Monte-Carlo estimators in experiment E10.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.radio.rng import SeedLike, make_rng


def lemma1_round_budget(p: float, d: float, tau: float) -> int:
    """Lemma 1's trial count ``r = ⌊(3d + 2τ)/p⌋``.

    With this many independent Bernoulli(p) trials, fewer than ``d``
    successes occur with probability at most ``e^{-tau}``.
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if d < 1:
        raise ValueError("Lemma 1 requires d >= 1")
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return int((3 * d + 2 * tau) / p)


def lemma1_tail_bound(tau: float) -> float:
    """The failure probability Lemma 1 guarantees: ``e^{-tau}``."""
    return math.exp(-tau)


def lemma2_threshold(parameters: Sequence[float], eps: float) -> float:
    """Lemma 2's deviation threshold ``2μ + 4·ln(1/ε)/p_min``.

    ``Pr(Σ X_i ≥ threshold) ≤ eps`` for independent geometric ``X_i``.
    """
    if not parameters:
        raise ValueError("need at least one geometric parameter")
    if any(not 0 < p <= 1 for p in parameters):
        raise ValueError("geometric parameters must be in (0, 1]")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    mu = sum(1.0 / p for p in parameters)
    p_min = min(parameters)
    return 2 * mu + 4 * math.log(1 / eps) / p_min


def monte_carlo_bernoulli_tail(
    p: float,
    d: float,
    tau: float,
    trials: int = 10000,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Estimate ``Pr(Binomial(r, p) < d)`` for Lemma 1's ``r``.

    Returns ``(empirical_probability, lemma_bound)``; validity means
    empirical ≤ bound (up to MC noise).
    """
    rng = make_rng(seed)
    r = lemma1_round_budget(p, d, tau)
    successes = rng.binomial(r, p, size=trials)
    empirical = float(np.mean(successes < d))
    return empirical, lemma1_tail_bound(tau)


def monte_carlo_geometric_tail(
    parameters: Sequence[float],
    eps: float,
    trials: int = 10000,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Estimate ``Pr(Σ X_i ≥ threshold)`` for Lemma 2's threshold.

    Returns ``(empirical_probability, eps)``.
    """
    rng = make_rng(seed)
    threshold = lemma2_threshold(parameters, eps)
    total = np.zeros(trials)
    for p in parameters:
        total += rng.geometric(p, size=trials)
    empirical = float(np.mean(total >= threshold))
    return empirical, eps
