"""Lower bounds cited by the paper, as executable formulas.

The paper situates its upper bound against the known lower bounds for
multiple-message broadcast:

- randomized: ``Ω(k + log(n/D))`` in expectation [Chlebus-Kowalski-Radzik
  2009; Kushilevitz-Mansour 1998],
- single-message randomized: ``Ω(D·log(n/D))`` [Kushilevitz-Mansour],
- deterministic: ``Ω(k + n·log n)``,
- schedule length for k = n without looking into packets:
  ``Ω(n·log n)`` [Gasieniec-Potapov 2002].

These make the "gap to optimality" computable: experiments can report how
far the measured round counts sit above the strongest applicable lower
bound (the gap the paper leaves open is a ``logΔ`` factor on the ``k``
term plus polylog additive terms).
"""

from __future__ import annotations

import math

from repro.core.config import log2n


def randomized_k_broadcast_lower_bound(n: int, diameter: int, k: int) -> float:
    """``Ω(k + log(n/D))`` — every packet costs a round at some receiver,
    plus the single-broadcast randomized lower bound's additive term."""
    ratio = max(2.0, n / max(diameter, 1))
    return k + math.log2(ratio)


def randomized_single_broadcast_lower_bound(n: int, diameter: int) -> float:
    """Kushilevitz-Mansour: ``Ω(D·log(n/D))`` for broadcasting one message."""
    ratio = max(2.0, n / max(diameter, 1))
    return diameter * math.log2(ratio)


def deterministic_k_broadcast_lower_bound(n: int, k: int) -> float:
    """``Ω(k + n·log n)`` for deterministic algorithms."""
    return k + n * log2n(n)


def oblivious_schedule_lower_bound(n: int) -> float:
    """Gasieniec-Potapov: ``Ω(n·log n)`` schedule length for k = n when
    nodes cannot inspect packet contents."""
    return n * log2n(n)


def optimality_gap(
    measured_rounds: float, n: int, diameter: int, k: int
) -> float:
    """Measured rounds divided by the randomized lower bound — the
    constant-and-polylog factor the algorithm leaves on the table.

    For the paper's algorithm at large ``k`` this should be ``Θ(logΔ)``
    times an implementation constant.
    """
    bound = randomized_k_broadcast_lower_bound(n, diameter, k)
    return measured_rounds / bound
