"""Crash-fault schedules and self-healing supervision.

This package layers robustness machinery over the four-stage broadcast:

- :mod:`repro.resilience.schedule` — declarative, round-indexed fault
  timelines (crashes, recoveries, link outages, jam windows);
- :mod:`repro.resilience.network` — a transparent proxy applying a
  schedule through any network's own ``resolve_round``;
- :mod:`repro.resilience.adversary` — active adversaries layered on the
  proxy: reactive and budgeted jammers, and a corruption channel that
  flips bits in coded payloads for the integrity layer
  (:mod:`repro.coding.integrity`) to catch;
- :mod:`repro.resilience.byzantine` — insider faults: nodes that keep
  running the protocol while lying (forged election claims, forged or
  withheld ACKs, BFS layer misreports, checksum-valid poisoned rows);
- :mod:`repro.resilience.repair` — BFS-tree re-parenting via Decay;
- :mod:`repro.resilience.supervisor` — watchdog timeouts, bounded
  retries with backoff, leader re-election, tree repair, and
  quorum-audited insider recovery wrapped around the four stages;
- :mod:`repro.resilience.report` — chaos trials for the experiment
  harness and degradation curves;
- :mod:`repro.resilience.chaos` — seeded chaos-fuzzing campaigns over
  the whole vocabulary: sampled mixed-fault schedules, invariant
  oracles, delta-debugging shrinking, and replayable failure
  artifacts.
"""

from repro.resilience.chaos import (
    CampaignConfig,
    CampaignReport,
    ChaosCampaign,
    IntensityProfile,
    OracleVerdict,
    PROFILES,
    ReplayReport,
    ShrinkResult,
    build_artifact,
    load_artifact,
    replay_artifact,
    run_campaign,
    run_oracles,
    sample_campaign,
    shrink_campaign,
    write_artifact,
)

from repro.resilience.adversary import (
    Adversary,
    AdversaryStack,
    BudgetedJammer,
    CorruptionChannel,
    ReactiveJammer,
)
from repro.resilience.byzantine import (
    BYZANTINE_MODES,
    ByzantineSet,
    random_byzantine_set,
)
from repro.resilience.network import DynamicFaultNetwork
from repro.resilience.repair import (
    TreeRepairResult,
    attached_set,
    default_repair_epochs,
    find_orphans,
    repair_tree,
)
from repro.resilience.report import (
    adversarial_degradation_curve,
    byzantine_degradation_curve,
    degradation_curve,
    make_adversary,
    run_adversarial_trial,
    run_byzantine_trial,
    run_chaos_trial,
    supervised_metrics,
)
from repro.resilience.schedule import (
    FaultEvent,
    FaultSchedule,
    JamWindow,
    random_crash_schedule,
)
from repro.resilience.supervisor import (
    StageAttempt,
    SupervisedBroadcast,
    SupervisedResult,
    SupervisionPolicy,
)

__all__ = [
    "Adversary",
    "AdversaryStack",
    "BYZANTINE_MODES",
    "BudgetedJammer",
    "ByzantineSet",
    "CampaignConfig",
    "CampaignReport",
    "ChaosCampaign",
    "CorruptionChannel",
    "DynamicFaultNetwork",
    "FaultEvent",
    "FaultSchedule",
    "IntensityProfile",
    "JamWindow",
    "OracleVerdict",
    "PROFILES",
    "ReactiveJammer",
    "ReplayReport",
    "ShrinkResult",
    "StageAttempt",
    "SupervisedBroadcast",
    "SupervisedResult",
    "SupervisionPolicy",
    "TreeRepairResult",
    "adversarial_degradation_curve",
    "attached_set",
    "build_artifact",
    "byzantine_degradation_curve",
    "default_repair_epochs",
    "degradation_curve",
    "find_orphans",
    "load_artifact",
    "make_adversary",
    "random_byzantine_set",
    "random_crash_schedule",
    "repair_tree",
    "replay_artifact",
    "run_adversarial_trial",
    "run_byzantine_trial",
    "run_campaign",
    "run_chaos_trial",
    "run_oracles",
    "sample_campaign",
    "shrink_campaign",
    "supervised_metrics",
    "write_artifact",
]
