"""Replayable failure artifacts.

When a fuzz trial violates an oracle, the campaign runner bundles
everything needed to reproduce the failure into one JSON document:

- the runner configuration (profile, topology, workload, preset,
  policy knobs, round-bound factor, ablation),
- the violating campaign (seed, schedule, jam windows, adversary
  knobs, Byzantine assignment — the campaign *is* the reproduction,
  every random stream derives from its fields),
- the oracle verdicts the run produced,
- optionally the shrunk campaign and its verdicts.

``repro chaos replay bundle.json`` re-executes the bundle bit-for-bit:
because the whole pipeline is seeded, the replay must reproduce the
recorded verdict sequence exactly — :class:`ReplayReport.deterministic`
says whether it did.  A non-deterministic replay is itself a bug (an
unseeded random stream leaked into the pipeline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.resilience.chaos.fuzzer import ChaosCampaign
from repro.resilience.chaos.oracles import OracleVerdict, violated
from repro.resilience.chaos.runner import (
    CampaignConfig,
    evaluate_campaign,
    make_policy,
)
from repro.resilience.chaos.shrink import ShrinkResult

ARTIFACT_FORMAT = "repro-chaos-failure"
ARTIFACT_VERSION = 1


def build_artifact(
    config: CampaignConfig,
    trial: dict,
    shrink: Optional[ShrinkResult] = None,
    shrunk_verdicts: Optional[Sequence[OracleVerdict]] = None,
) -> dict:
    """Assemble the failure bundle for one violating trial.

    ``trial`` is a :func:`repro.resilience.chaos.runner.run_fuzz_trial`
    summary dict; ``shrink``/``shrunk_verdicts`` attach the minimized
    campaign when shrinking ran.
    """
    artifact = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "config": config.to_json(),
        "seed": trial["seed"],
        "campaign": trial["campaign"],
        "verdicts": trial["verdicts"],
        "violations": trial["violations"],
        "total_rounds": trial.get("total_rounds"),
        "fault_atoms": trial.get("fault_atoms"),
    }
    if shrink is not None:
        shrunk = shrink.to_json()
        if shrunk_verdicts is not None:
            shrunk["verdicts"] = [v.to_json() for v in shrunk_verdicts]
        artifact["shrink"] = shrunk
    return artifact


def write_artifact(artifact: dict, path: Union[str, Path]) -> Path:
    """Write the bundle as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    return path


class ArtifactStream:
    """Streams failure bundles to disk as violating trials complete.

    Passed as the ``on_result`` callback of
    :func:`repro.resilience.chaos.runner.run_campaign`: each violating
    trial's bundle is written the moment the trial finishes, so an
    interrupted (or ``kill -9``'d) campaign keeps every failure
    reproduction it had already found instead of holding them in RAM
    until the end.  Shrinking is a post-campaign pass —
    :meth:`attach_shrink` rewrites the bundle in place with the
    minimized campaign attached.
    """

    def __init__(
        self,
        config: CampaignConfig,
        directory: Union[str, Path],
        prefix: str = "chaos",
    ) -> None:
        self.config = config
        self.directory = Path(directory)
        self.prefix = prefix
        self.paths: List[Path] = []

    def artifact_path(self, seed: int) -> Path:
        return self.directory / (
            f"{self.prefix}-{self.config.profile}"
            f"-{self.config.ablation}-seed{seed}.json"
        )

    def __call__(self, seed: int, trial: dict) -> Optional[Path]:
        if not trial.get("violations"):
            return None
        path = write_artifact(
            build_artifact(self.config, trial), self.artifact_path(seed)
        )
        if path not in self.paths:
            self.paths.append(path)
        return path

    def attach_shrink(
        self,
        trial: dict,
        shrink: ShrinkResult,
        shrunk_verdicts: Optional[Sequence[OracleVerdict]] = None,
    ) -> Path:
        """Rewrite a trial's bundle with the shrunk campaign included."""
        path = write_artifact(
            build_artifact(
                self.config, trial,
                shrink=shrink, shrunk_verdicts=shrunk_verdicts,
            ),
            self.artifact_path(int(trial["seed"])),
        )
        if path not in self.paths:
            self.paths.append(path)
        return path


def load_artifact(path: Union[str, Path]) -> dict:
    """Read and sanity-check a bundle."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a chaos failure artifact "
            f"(format={data.get('format')!r})"
        )
    if int(data.get("version", -1)) > ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {data.get('version')} is newer "
            f"than this library understands ({ARTIFACT_VERSION})"
        )
    return data


@dataclass
class ReplayReport:
    """Outcome of re-executing an artifact."""

    which: str  #: "original" or "shrunk"
    seed: int
    verdicts: List[OracleVerdict]
    recorded: List[dict]  #: the verdicts the artifact recorded
    deterministic: bool  #: replay reproduced the recorded verdicts

    @property
    def violations(self) -> List[OracleVerdict]:
        return violated(self.verdicts)

    def summary(self) -> dict:
        return {
            "which": self.which,
            "seed": self.seed,
            "deterministic": self.deterministic,
            "violations": [v.name for v in self.violations],
        }


def replay_artifact(
    artifact: dict, which: str = "original"
) -> ReplayReport:
    """Re-execute a bundle's campaign and re-judge it.

    ``which`` selects the original violating campaign or (when the
    bundle carries one) the shrunk reproduction.  The replay runs under
    the bundle's own recorded configuration, so the verdicts must come
    out identical — any divergence is reported, not papered over.
    """
    if which not in ("original", "shrunk"):
        raise ValueError(f"which must be 'original' or 'shrunk', not {which!r}")
    config = CampaignConfig.from_json(artifact["config"])
    if which == "shrunk":
        shrunk = artifact.get("shrink")
        if not shrunk:
            raise ValueError("artifact carries no shrunk campaign")
        campaign_json = shrunk["shrunk_campaign"]
        recorded = shrunk.get("verdicts", [])
    else:
        campaign_json = artifact["campaign"]
        recorded = artifact.get("verdicts", [])

    campaign = ChaosCampaign.from_json(campaign_json)
    _, verdicts = evaluate_campaign(
        campaign,
        policy=make_policy(
            campaign,
            max_stage_retries=config.max_stage_retries,
            max_reelections=config.max_reelections,
        ),
        preset=config.preset,
        round_bound_factor=config.round_bound_factor,
    )
    deterministic = not recorded or (
        [(v.name, v.passed, v.skipped) for v in verdicts]
        == [
            (v["name"], v["passed"], v.get("skipped", False))
            for v in recorded
        ]
    )
    return ReplayReport(
        which=which,
        seed=int(campaign.seed),
        verdicts=verdicts,
        recorded=list(recorded),
        deterministic=deterministic,
    )
