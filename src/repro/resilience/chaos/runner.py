"""Campaign execution: N seeded fuzz trials, oracles on every one.

The execution path records *two* transcripts of the same run:

- the **inner** transcript sits between the fault layer and the
  collision model, so it sees what the channel actually resolved
  (crash-filtered transmissions, insider lies included);
- the **outer** transcript is recorded by the fault network itself
  (:class:`TranscribingFaultNetwork`), so it sees what the protocol
  saw after every scheduled and adversarial drop.

The delta between the two is exactly the fault layer's doing, which is
what the ``drop_accounting`` and ``replay_receptions`` oracles audit.

:func:`run_campaign` fans trials across the supervised
:mod:`repro.experiments.orchestrator` worker pool (checkpointed and
resumable via :func:`resume_campaign` when given a directory); the
per-trial entry point :func:`run_fuzz_trial` therefore returns a plain
JSON-able summary dict (campaign, verdicts, headline metrics), not
live network objects.  Shrinking and artifact replay re-execute
locally from the campaign JSON.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import AlgorithmParameters
from repro.coding.packets import Packet
from repro.dynamic.arrivals import build_arrival_process
from repro.dynamic.churn import ChurnNetwork
from repro.dynamic.continuous import (
    ContinuousBroadcast,
    ContinuousPolicy,
    ContinuousResult,
)
from repro.radio.network import RadioNetwork
from repro.radio.transcript import RecordingNetwork, TranscriptEntry
from repro.resilience.byzantine import ByzantineSet
from repro.resilience.network import DynamicFaultNetwork
from repro.resilience.report import make_adversary
from repro.resilience.supervisor import (
    SupervisedBroadcast,
    SupervisedResult,
    SupervisionPolicy,
)
from repro.resilience.chaos.fuzzer import (
    PROFILES,
    ChaosCampaign,
    build_topology_spec,
    build_workload_spec,
    sample_campaign,
)
from repro.resilience.chaos.oracles import (
    DEFAULT_ROUND_BOUND_FACTOR,
    OracleVerdict,
    run_oracles,
    violated,
)

_PRESETS = {
    "default": AlgorithmParameters,
    "fast": AlgorithmParameters.fast,
    "paper": AlgorithmParameters.paper,
}


class TranscribingFaultNetwork(DynamicFaultNetwork):
    """A fault network that records its own (post-fault) resolutions.

    Kept as a subclass rather than an outer :class:`RecordingNetwork`
    wrapper because :class:`SupervisedBroadcast` type-switches on
    ``isinstance(network, DynamicFaultNetwork)`` — a wrapper would be
    re-wrapped in a second fault layer.  Each entry is stamped with the
    pre-resolution clock so a replayer can advance a fresh fault
    network to the exact same round.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.outer_transcript: List[TranscriptEntry] = []

    def resolve_round(self, transmissions):
        clock = self.clock
        received = super().resolve_round(transmissions)
        self.outer_transcript.append(
            TranscriptEntry(
                index=len(self.outer_transcript),
                transmissions=dict(transmissions),
                received=dict(received),
                clock=clock,
            )
        )
        return received


def build_fault_stack(
    campaign: ChaosCampaign,
    base,
    schedule=None,
    transcribe: bool = False,
) -> DynamicFaultNetwork:
    """Instantiate the campaign's full fault stack over ``base``.

    Everything is seeded from campaign fields, so two calls build
    stacks with identical random streams — the determinism the replay
    oracle and the artifact replayer rely on.
    """
    adversary = make_adversary(
        jam_prob=campaign.jam_prob,
        corruption_rate=campaign.corrupt_rate,
        jam_budget=campaign.jam_budget,
        seed=campaign.adversary_seed,
    )
    byzantine = None
    if campaign.byzantine_nodes:
        byzantine = ByzantineSet(
            campaign.byzantine_nodes,
            campaign.byzantine_mode,
            authentication=campaign.authentication,
        )
    cls = TranscribingFaultNetwork if transcribe else DynamicFaultNetwork
    return cls(
        base,
        schedule=campaign.schedule if schedule is None else schedule,
        seed=campaign.seed,
        adversary=adversary,
        byzantine=byzantine,
    )


def wrap_churn(campaign: ChaosCampaign, base: RadioNetwork):
    """Apply the campaign's churn layer over ``base`` (identity when
    the campaign has none).  The ``leaky_churn`` ablation arms the
    planted phantom-delivery bug the no_phantom_delivery oracle exists
    to catch."""
    if campaign.churn is None:
        return base
    return ChurnNetwork(
        base,
        campaign.churn,
        deliver_to_absent=(campaign.ablation == "leaky_churn"),
    )


@dataclass
class TrialExecution:
    """One executed trial with everything the oracles inspect.

    Exactly one of ``result`` (one-shot supervised broadcast) and
    ``continuous`` (open-ended traffic run) is set, matching
    ``campaign.mode``.
    """

    campaign: ChaosCampaign
    result: Optional[SupervisedResult]
    fault_net: TranscribingFaultNetwork
    inner_transcript: List[TranscriptEntry]
    outer_transcript: List[TranscriptEntry]
    base_network: RadioNetwork
    packets: Sequence[Packet]
    continuous: Optional[ContinuousResult] = None

    def rebuild_base(self) -> RadioNetwork:
        """A fresh, identical copy of the underlying topology (specs
        are deterministic), for replay against untouched state."""
        return build_topology_spec(self.campaign.topology)

    def rebuild_channel(self):
        """A fresh copy of the churn-wrapped channel (what the inner
        transcript actually recorded), for exact re-resolution."""
        return wrap_churn(self.campaign, self.rebuild_base())


def make_policy(
    campaign: ChaosCampaign,
    max_stage_retries: int = 4,
    max_reelections: int = 3,
) -> SupervisionPolicy:
    """The supervision policy campaigns run under.

    Retry/re-election headroom matches the R2/R3 experiment settings
    (the envelope the light/medium profiles are calibrated against).
    The campaign's ablation switches off the corresponding repair —
    that is the planted-bug mechanism the fuzzer is expected to catch.
    """
    return SupervisionPolicy(
        max_stage_retries=max_stage_retries,
        max_reelections=max_reelections,
        enable_tree_repair=(campaign.ablation != "no_repair"),
    )


def execute_campaign(
    campaign: ChaosCampaign,
    policy: Optional[SupervisionPolicy] = None,
    params: Optional[AlgorithmParameters] = None,
    preset: str = "default",
    engine: Optional[str] = None,
) -> TrialExecution:
    """Run one campaign end to end, recording both transcripts.

    ``engine`` optionally overrides the simulation engine for the whole
    fault stack.  ``"fast"`` and ``"reference"`` replay a campaign
    bit-identically; ``"columnar"`` batches its RNG draws and is judged
    by the semantic-equivalence gate (:mod:`repro.testing.semantic`)
    instead.
    """
    base = build_topology_spec(campaign.topology)
    if engine is not None:
        base.set_engine(engine)
    packets = build_workload_spec(base, campaign.workload)
    # stack order: faults over transcript over churn over the channel —
    # the inner transcript records the churn-resolved receptions, which
    # is what the reception_rule and no_phantom_delivery oracles replay
    inner = RecordingNetwork(wrap_churn(campaign, base))
    fault_net = build_fault_stack(campaign, inner, transcribe=True)
    params = params if params is not None else _PRESETS[preset]()
    if params.authentication != campaign.authentication:
        # the supervisor pushes params.authentication into the insider
        # set via configure(); honor the campaign's choice
        params = dataclasses.replace(
            params, authentication=campaign.authentication
        )
    result: Optional[SupervisedResult] = None
    continuous: Optional[ContinuousResult] = None
    # the amnesiac_blacklist ablation plants the forget-on-leave bug:
    # one-shot runs drop their carried convictions entirely, continuous
    # runs arm the forgetful registry (no_blacklist_escape's self-test)
    amnesiac = campaign.ablation == "amnesiac_blacklist"
    if campaign.mode == "continuous":
        traffic = campaign.traffic
        process = build_arrival_process(
            dict(traffic["process"]), network=base
        )
        driver = ContinuousBroadcast(
            fault_net,
            process,
            policy=ContinuousPolicy.from_json(dict(traffic["policy"])),
            # batches are capped at max_batch, so the driver's cheap
            # known-k collection sizing applies (see ContinuousBroadcast)
            params=params.with_overrides(
                collection_estimate_factor=0.25, mspg_enabled=False,
            ),
            seed=campaign.seed,
            quarantined=campaign.quarantined,
            forgetful_quarantine=amnesiac,
        )
        continuous = driver.run(int(traffic["rounds"]))
    else:
        result = SupervisedBroadcast(
            fault_net,
            params=params,
            policy=policy if policy is not None else make_policy(campaign),
            seed=campaign.seed,
            initial_blacklist=() if amnesiac else campaign.quarantined,
        ).run(packets)
    return TrialExecution(
        campaign=campaign,
        result=result,
        fault_net=fault_net,
        inner_transcript=inner.transcript,
        outer_transcript=fault_net.outer_transcript,
        base_network=base,
        packets=packets,
        continuous=continuous,
    )


def evaluate_campaign(
    campaign: ChaosCampaign,
    policy: Optional[SupervisionPolicy] = None,
    params: Optional[AlgorithmParameters] = None,
    preset: str = "default",
    round_bound_factor: float = DEFAULT_ROUND_BOUND_FACTOR,
    engine: Optional[str] = None,
) -> Tuple[TrialExecution, List[OracleVerdict]]:
    """Execute one campaign and run the full oracle catalog on it."""
    execution = execute_campaign(
        campaign, policy=policy, params=params, preset=preset,
        engine=engine,
    )
    return execution, run_oracles(
        execution, round_bound_factor=round_bound_factor
    )


@dataclass
class CampaignConfig:
    """Everything a worker process needs to fuzz one seed (picklable)."""

    profile: str = "medium"
    topology: Dict[str, object] = field(
        default_factory=lambda: {"kind": "grid", "rows": 4, "cols": 4}
    )
    workload: Dict[str, object] = field(
        default_factory=lambda: {"kind": "uniform", "k": 6}
    )
    preset: str = "default"
    ablation: str = "none"
    round_bound_factor: float = DEFAULT_ROUND_BOUND_FACTOR
    max_stage_retries: int = 4
    max_reelections: int = 3
    engine: str = "fast"

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "topology": dict(self.topology),
            "workload": dict(self.workload),
            "preset": self.preset,
            "ablation": self.ablation,
            "round_bound_factor": self.round_bound_factor,
            "max_stage_retries": self.max_stage_retries,
            "max_reelections": self.max_reelections,
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignConfig":
        return cls(
            profile=data.get("profile", "medium"),
            topology=dict(data["topology"]),
            workload=dict(data["workload"]),
            preset=data.get("preset", "default"),
            ablation=data.get("ablation", "none"),
            round_bound_factor=float(
                data.get("round_bound_factor", DEFAULT_ROUND_BOUND_FACTOR)
            ),
            max_stage_retries=int(data.get("max_stage_retries", 4)),
            max_reelections=int(data.get("max_reelections", 3)),
            engine=str(data.get("engine", "fast")),
        )


def run_fuzz_trial(config: CampaignConfig, seed: int) -> dict:
    """Fuzz one seed under ``config`` (the parallel-pool entry point).

    Samples a campaign, executes it, runs the oracles, and returns a
    JSON-able summary — the live network objects stay in the worker.
    """
    profile = PROFILES[config.profile]
    campaign = sample_campaign(
        profile,
        config.topology,
        {**config.workload, "seed": int(seed)},
        seed=int(seed),
        ablation=config.ablation,
    )
    execution, verdicts = evaluate_campaign(
        campaign,
        policy=make_policy(
            campaign,
            max_stage_retries=config.max_stage_retries,
            max_reelections=config.max_reelections,
        ),
        preset=config.preset,
        round_bound_factor=config.round_bound_factor,
        engine=config.engine,
    )
    bad = violated(verdicts)
    summary = {
        "seed": int(seed),
        "profile": config.profile,
        "mode": campaign.mode,
        "campaign": campaign.to_json(),
        "verdicts": [v.to_json() for v in verdicts],
        "violations": [v.to_json() for v in bad],
        "fault_atoms": campaign.fault_atom_count(),
    }
    if execution.continuous is not None:
        c = execution.continuous
        summary.update({
            "success": bool(c.accounting_exact),
            "total_rounds": int(c.rounds),
            "informed_fraction": 1.0,
            "continuous": c.summary(),
        })
    else:
        summary.update({
            "success": bool(execution.result.success),
            "total_rounds": int(execution.result.total_rounds),
            "informed_fraction": float(
                execution.result.informed_fraction
            ),
        })
    return summary


@dataclass
class CampaignReport:
    """Aggregate outcome of a fuzzing campaign.

    ``trials`` holds the completed trials in seed order;
    ``quarantined`` lists seeds the orchestrator gave up on (as
    :class:`repro.experiments.orchestrator.SeedFailure` JSON dicts) —
    graceful degradation means a poisoned seed is reported here rather
    than sinking the campaign.  ``orchestration`` carries the execution
    counters (retries, worker deaths, recovered trials) when the
    campaign ran under the supervised orchestrator.
    """

    config: CampaignConfig
    base_seed: int
    trials: List[dict]
    quarantined: List[dict] = field(default_factory=list)
    orchestration: Dict[str, int] = field(default_factory=dict)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def violating(self) -> List[dict]:
        return [t for t in self.trials if t["violations"]]

    @property
    def safety_violating(self) -> List[dict]:
        return [
            t for t in self.trials
            if any(v["category"] == "safety" for v in t["violations"])
        ]

    @property
    def violation_rate(self) -> float:
        return (
            len(self.violating) / self.num_trials if self.trials else 0.0
        )

    def summary(self) -> dict:
        oracle_counts: Dict[str, int] = {}
        for t in self.violating:
            for v in t["violations"]:
                oracle_counts[v["name"]] = oracle_counts.get(v["name"], 0) + 1
        return {
            "trials": self.num_trials,
            "base_seed": self.base_seed,
            "profile": self.config.profile,
            "ablation": self.config.ablation,
            "violating_trials": len(self.violating),
            "safety_violating_trials": len(self.safety_violating),
            "violation_rate": self.violation_rate,
            "violations_by_oracle": oracle_counts,
            "quarantined_trials": len(self.quarantined),
            "quarantined_seeds": sorted(
                int(q["seed"]) for q in self.quarantined
            ),
            "mean_rounds": (
                sum(t["total_rounds"] for t in self.trials)
                / self.num_trials if self.trials else 0.0
            ),
            "success_rate": (
                sum(t["success"] for t in self.trials) / self.num_trials
                if self.trials else 0.0
            ),
        }


CAMPAIGN_SPEC_KIND = "chaos-fuzz"


def campaign_spec(config: CampaignConfig) -> dict:
    """The deterministic campaign identity stored in journal + manifest.

    Only trial-defining fields go in — execution knobs (worker count,
    timeouts, injected faults) are excluded so a recovery run and a
    reference run produce byte-identical manifests.
    """
    return {"kind": CAMPAIGN_SPEC_KIND, "config": config.to_json()}


def run_campaign(
    config: CampaignConfig,
    trials: int,
    base_seed: int = 0,
    max_workers: Optional[int] = None,
    checkpoint_dir: Optional[object] = None,
    orchestrator: Optional[object] = None,
    on_result=None,
) -> CampaignReport:
    """Fuzz ``trials`` consecutive seeds under the supervised orchestrator.

    Results are in seed order and independent of ``max_workers`` —
    byte-for-byte the same report sequentially or across a pool.

    ``checkpoint_dir`` makes the campaign durable: every completed
    trial is journaled (fsync'd JSONL) and an atomic result manifest is
    written at the end, so a ``kill -9`` loses nothing and calling
    :func:`resume_campaign` on the directory continues exactly where
    the run stopped.  ``orchestrator`` overrides the execution policy
    (:class:`repro.experiments.orchestrator.OrchestratorConfig` —
    retries, backoff, timeouts, fault injection); ``on_result`` streams
    each ``(seed, trial_dict)`` as it completes, which the CLI uses to
    write failure artifacts incrementally instead of holding them all
    in RAM until the campaign ends.
    """
    from repro.experiments.orchestrator import (
        OrchestratorConfig,
        run_supervised,
    )

    orch = orchestrator if orchestrator is not None else OrchestratorConfig()
    if max_workers is not None:
        orch = dataclasses.replace(orch, num_workers=max_workers)
    outcome = run_supervised(
        partial(run_fuzz_trial, config),
        num_trials=trials,
        base_seed=base_seed,
        config=orch,
        checkpoint_dir=checkpoint_dir,
        spec=campaign_spec(config),
        on_result=on_result,
    )
    return CampaignReport(
        config=config,
        base_seed=base_seed,
        trials=[outcome.results[s] for s in sorted(outcome.results)],
        quarantined=[f.to_json() for f in outcome.quarantined],
        orchestration=outcome.stats(),
    )


def resume_campaign(
    checkpoint_dir,
    max_workers: Optional[int] = None,
    orchestrator: Optional[object] = None,
    on_result=None,
) -> CampaignReport:
    """Continue an interrupted checkpointed campaign.

    Reads the campaign identity (config, seed range) from the journal
    header, recovers every completed trial, runs only the remainder,
    and rewrites the manifest — byte-identical to what an uninterrupted
    :func:`run_campaign` would have produced, because trials are
    seed-addressed and deterministic.
    """
    from repro.experiments.orchestrator import campaign_header

    header = campaign_header(checkpoint_dir)
    if header.spec.get("kind") != CAMPAIGN_SPEC_KIND:
        raise ValueError(
            f"{checkpoint_dir}: journal is a "
            f"{header.spec.get('kind')!r} campaign, not chaos-fuzz"
        )
    config = CampaignConfig.from_json(header.spec["config"])
    return run_campaign(
        config,
        trials=header.trials,
        base_seed=header.base_seed,
        max_workers=max_workers,
        checkpoint_dir=checkpoint_dir,
        orchestrator=orchestrator,
        on_result=on_result,
    )
