"""The seeded schedule fuzzer: declarative intensity → valid campaigns.

An :class:`IntensityProfile` describes *ranges* (how many crashes, how
long a jam window, how hot the corruption channel);::

    campaign = sample_campaign(PROFILES["medium"], spec, workload, seed=7)

draws one concrete :class:`ChaosCampaign` from those ranges with a
dedicated seeded RNG.  The sampler's contract:

- **validity** — the emitted :class:`FaultSchedule` always passes
  :meth:`FaultSchedule.validate` together with the Byzantine assignment
  (no crash/Byzantine overlap, no events on dead nodes, no overlapping
  same-node jam windows, all ids in range);
- **determinism** — the same (profile, topology, workload, seed)
  quadruple always yields the identical campaign, byte-for-byte in its
  JSON form;
- **self-containment** — a campaign carries everything needed to re-run
  it from scratch (topology and workload *specs*, not objects), which
  is what the failure artifacts serialize.

Campaign event rounds are drawn inside a horizon proportional to the
paper's Theorem 2 bound for the instance, so faults land where the run
actually is rather than uniformly over an arbitrary range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.complexity import theorem2_total_bound
from repro.coding.packets import Packet, required_packet_bits
from repro.dynamic.churn import (
    ADVERSARIAL_STRATEGIES,
    AdversarialChurnSpec,
    ChurnSchedule,
    random_churn_schedule,
)
from repro.dynamic.continuous import DROP_POLICIES, ContinuousPolicy
from repro.radio.network import RadioNetwork
from repro.radio.rng import make_rng
from repro.resilience.byzantine import BYZANTINE_MODES
from repro.resilience.schedule import STAGES, FaultSchedule

#: Campaign-level ablations: named known-broken configurations the
#: fuzzer is expected to catch (used by tests, CI, and the R4 bench).
#: ``leaky_churn`` plants a phantom-delivery bug in the churn layer
#: (departed nodes keep receiving) for the no_phantom_delivery oracle's
#: self-test.  ``amnesiac_blacklist`` makes the quarantine registry
#: forget convictions when the convict leaves (and drops carried
#: convictions in one-shot runs), so a convicted insider can launder
#: its identity through a leave/re-join cycle — the no_blacklist_escape
#: oracle's self-test.
ABLATIONS = ("none", "no_repair", "leaky_churn", "amnesiac_blacklist")


def build_topology_spec(spec: Dict[str, object]) -> RadioNetwork:
    """Instantiate a network from its serializable spec dict.

    Mirrors the CLI's topology vocabulary: ``{"kind": "grid", "rows": 4,
    "cols": 4}``, ``{"kind": "rgg", "n": 20, "seed": 3}``, etc.
    """
    from repro import topology

    kind = spec["kind"]
    if kind == "grid":
        return topology.grid(int(spec["rows"]), int(spec["cols"]))
    if kind == "tree":
        return topology.balanced_tree(
            int(spec["branching"]), int(spec["depth"])
        )
    if kind in ("line", "ring", "star", "clique"):
        return getattr(topology, kind)(int(spec["n"]))
    if kind == "hypercube":
        return topology.hypercube(int(spec["dimension"]))
    if kind == "rgg":
        return topology.random_geometric(
            int(spec["n"]), seed=int(spec.get("seed", 0))
        )
    if kind == "gnp":
        return topology.random_connected_gnp(
            int(spec["n"]), seed=int(spec.get("seed", 0))
        )
    raise ValueError(f"unknown topology kind {kind!r}")


def build_workload_spec(
    network: RadioNetwork, spec: Dict[str, object]
) -> List[Packet]:
    """Instantiate the packet placement from its serializable spec."""
    from repro.experiments import workloads

    kind = spec.get("kind", "uniform")
    seed = int(spec.get("seed", 0))
    k = int(spec.get("k", 1))
    if kind == "uniform":
        return workloads.uniform_random_placement(network, k, seed=seed)
    if kind == "single":
        return workloads.single_source_burst(
            network, k, source=int(spec.get("source", 0)), seed=seed
        )
    if kind == "hotspot":
        return workloads.hotspot_placement(network, k, seed=seed)
    if kind == "all":
        return workloads.all_nodes_one_packet(network, seed=seed)
    raise ValueError(f"unknown workload kind {kind!r}")


@dataclass(frozen=True)
class IntensityProfile:
    """Sampling ranges for one fuzzing intensity.

    All ``(lo, hi)`` pairs are inclusive ranges; probabilities named
    ``p_*`` gate whether a whole fault family is drawn at all, so a
    profile mixes fault kinds across trials rather than stacking every
    kind in every trial.

    ``expect_delivery`` declares whether the liveness oracles apply:
    profiles inside the supervisor's proven recovery envelope (R1–R3)
    demand full delivery and a bounded round count; profiles beyond it
    (``heavy``) check safety only — under a half-jammed channel a run
    may honestly fail, and that is not a bug.
    """

    name: str
    crash_frac: Tuple[float, float] = (0.0, 0.1)
    p_symbolic: float = 0.25
    recover_prob: float = 0.4
    link_events: Tuple[int, int] = (0, 2)
    link_restore_prob: float = 0.6
    jam_window_count: Tuple[int, int] = (0, 1)
    jam_len: Tuple[int, int] = (20, 200)
    jam_prob: Tuple[float, float] = (0.3, 0.8)
    jam_node_count: Tuple[int, int] = (1, 3)
    p_adv_jam: float = 0.3
    adv_jam_prob: Tuple[float, float] = (0.02, 0.1)
    p_corrupt: float = 0.4
    corrupt_rate: Tuple[float, float] = (0.01, 0.05)
    p_jam_budget: float = 0.2
    jam_budget: Tuple[int, int] = (5, 40)
    p_byzantine: float = 0.3
    byzantine_frac: Tuple[float, float] = (0.05, 0.1)
    byzantine_modes: Tuple[str, ...] = BYZANTINE_MODES
    allow_leader_crash: bool = False
    expect_delivery: bool = True
    horizon_factor: float = 30.0
    # -- topology churn (drawn from a separate seeded stream, so these
    # knobs never perturb the fault-family draws above) ----------------
    p_churn: float = 0.4
    churn_leave_frac: Tuple[float, float] = (0.0, 0.1)
    churn_join_frac: Tuple[float, float] = (0.0, 0.08)
    churn_edge_flips: Tuple[int, int] = (0, 4)
    churn_rejoin_prob: float = 0.5
    churn_partition_prob: float = 0.15
    # -- adversarial extensions (a THIRD seeded stream, so these knobs
    # never perturb the fault-family or churn/traffic draws above) -----
    p_adversarial_churn: float = 0.25
    adv_churn_strategies: Tuple[str, ...] = ADVERSARIAL_STRATEGIES
    p_carried_quarantine: float = 0.15
    p_insider_rejoin: float = 0.35
    # -- continuous-traffic mode (same separate stream) ----------------
    p_continuous: float = 0.3
    traffic_rate: Tuple[float, float] = (0.002, 0.008)
    continuous_rounds: Tuple[int, int] = (2500, 5000)
    queue_capacity: Tuple[int, int] = (4, 16)
    slo_rounds: Tuple[int, int] = (2048, 8192)


#: The named intensity tiers the CLI, CI, and R4 bench sweep.
PROFILES: Dict[str, IntensityProfile] = {
    "light": IntensityProfile(
        name="light",
        crash_frac=(0.0, 0.08),
        link_events=(0, 1),
        jam_window_count=(0, 1),
        jam_len=(10, 80),
        jam_prob=(0.2, 0.6),
        p_adv_jam=0.15,
        adv_jam_prob=(0.01, 0.05),
        p_corrupt=0.3,
        corrupt_rate=(0.005, 0.02),
        p_jam_budget=0.0,
        p_byzantine=0.15,
        byzantine_frac=(0.05, 0.08),
        p_churn=0.25,
        churn_leave_frac=(0.0, 0.06),
        churn_join_frac=(0.0, 0.05),
        churn_edge_flips=(0, 2),
        churn_partition_prob=0.0,
        p_adversarial_churn=0.15,
        p_carried_quarantine=0.1,
        p_insider_rejoin=0.25,
        p_continuous=0.25,
    ),
    "medium": IntensityProfile(
        name="medium",
    ),
    "heavy": IntensityProfile(
        name="heavy",
        crash_frac=(0.05, 0.3),
        p_symbolic=0.35,
        recover_prob=0.3,
        link_events=(0, 4),
        jam_window_count=(0, 3),
        jam_len=(50, 600),
        jam_prob=(0.5, 1.0),
        jam_node_count=(1, 6),
        p_adv_jam=0.6,
        adv_jam_prob=(0.1, 0.4),
        p_corrupt=0.6,
        corrupt_rate=(0.02, 0.15),
        p_jam_budget=0.5,
        jam_budget=(20, 120),
        p_byzantine=0.5,
        byzantine_frac=(0.05, 0.15),
        allow_leader_crash=True,
        expect_delivery=False,
        p_churn=0.6,
        churn_leave_frac=(0.05, 0.2),
        churn_join_frac=(0.0, 0.15),
        churn_edge_flips=(0, 8),
        churn_partition_prob=0.3,
        p_adversarial_churn=0.4,
        p_carried_quarantine=0.2,
        p_insider_rejoin=0.5,
        p_continuous=0.35,
    ),
}


@dataclass
class ChaosCampaign:
    """One fully specified, self-contained chaos trial.

    Serializable end to end: rebuilding the network from ``topology``,
    the packets from ``workload``, and the fault stack from the
    remaining fields reproduces the execution bit-for-bit (every RNG in
    the pipeline is seeded from fields of this object).
    """

    topology: Dict[str, object]
    workload: Dict[str, object]
    seed: int
    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    jam_prob: float = 0.0
    corrupt_rate: float = 0.0
    jam_budget: Optional[int] = None
    adversary_seed: int = 0
    byzantine_nodes: Tuple[int, ...] = ()
    byzantine_mode: Optional[str] = None
    authentication: bool = False
    profile: str = "custom"
    expect_delivery: bool = True
    ablation: str = "none"
    churn: Optional[ChurnSchedule] = None
    traffic: Optional[Dict[str, object]] = None
    quarantined: Tuple[int, ...] = ()
    churn_adversarial: Optional[Dict[str, object]] = None

    def __post_init__(self):
        if self.ablation not in ABLATIONS:
            raise ValueError(
                f"unknown ablation {self.ablation!r}; "
                f"expected one of {ABLATIONS}"
            )
        if self.byzantine_nodes and self.byzantine_mode is None:
            raise ValueError("byzantine nodes given without a mode")
        if (self.traffic is not None and self.byzantine_nodes
                and not self.authentication):
            raise ValueError(
                "continuous-traffic campaigns with Byzantine insiders "
                "require authentication (the quarantine/admission path "
                "needs verifiable identities to convict)"
            )
        if self.churn_adversarial is not None and self.churn is None:
            raise ValueError(
                "churn_adversarial spec given without the lowered "
                "churn schedule it describes"
            )

    @property
    def mode(self) -> str:
        """``"continuous"`` when the campaign carries an open-ended
        traffic spec, else the classic one-shot broadcast trial."""
        return "continuous" if self.traffic is not None else "oneshot"

    def fault_atom_count(self) -> int:
        """Schedule events + jam windows + churn events: the shrinker's
        primary size metric (adversary knobs and insider nodes are
        counted as atoms by the shrinker itself)."""
        churn_atoms = len(self.churn.events) if self.churn else 0
        return len(self.schedule) + churn_atoms

    def to_json(self) -> dict:
        return {
            "topology": dict(self.topology),
            "workload": dict(self.workload),
            "seed": self.seed,
            "schedule": self.schedule.to_json(),
            "jam_prob": self.jam_prob,
            "corrupt_rate": self.corrupt_rate,
            "jam_budget": self.jam_budget,
            "adversary_seed": self.adversary_seed,
            "byzantine_nodes": list(self.byzantine_nodes),
            "byzantine_mode": self.byzantine_mode,
            "authentication": self.authentication,
            "profile": self.profile,
            "expect_delivery": self.expect_delivery,
            "ablation": self.ablation,
            "churn": None if self.churn is None else self.churn.to_json(),
            "traffic": None if self.traffic is None else dict(self.traffic),
            "quarantined": list(self.quarantined),
            "churn_adversarial": (
                None if self.churn_adversarial is None
                else dict(self.churn_adversarial)
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChaosCampaign":
        churn_data = data.get("churn")
        traffic_data = data.get("traffic")
        return cls(
            topology=dict(data["topology"]),
            workload=dict(data["workload"]),
            seed=int(data["seed"]),
            schedule=FaultSchedule.from_json(data.get("schedule", {})),
            jam_prob=float(data.get("jam_prob", 0.0)),
            corrupt_rate=float(data.get("corrupt_rate", 0.0)),
            jam_budget=(
                None if data.get("jam_budget") is None
                else int(data["jam_budget"])
            ),
            adversary_seed=int(data.get("adversary_seed", 0)),
            byzantine_nodes=tuple(
                int(v) for v in data.get("byzantine_nodes", ())
            ),
            byzantine_mode=data.get("byzantine_mode"),
            authentication=bool(data.get("authentication", False)),
            profile=data.get("profile", "custom"),
            expect_delivery=bool(data.get("expect_delivery", True)),
            ablation=data.get("ablation", "none"),
            churn=(
                None if churn_data is None
                else ChurnSchedule.from_json(churn_data)
            ),
            traffic=(
                None if traffic_data is None else dict(traffic_data)
            ),
            quarantined=tuple(
                int(v) for v in data.get("quarantined", ())
            ),
            churn_adversarial=(
                None if data.get("churn_adversarial") is None
                else dict(data["churn_adversarial"])
            ),
        )


def _uniform(rng, lo: float, hi: float) -> float:
    return float(lo + (hi - lo) * rng.random())


def _randint(rng, lo: int, hi: int) -> int:
    """Inclusive integer draw."""
    if hi <= lo:
        return int(lo)
    return int(rng.integers(lo, hi + 1))


def _connected_without(network: RadioNetwork, victim: int) -> bool:
    """True when the footprint minus ``victim`` is still one component
    (so quarantining ``victim`` cannot honestly partition the run)."""
    n = network.n
    if n <= 2:
        return False
    start = 0 if victim != 0 else 1
    seen = {start}
    frontier = [start]
    while frontier:
        u = frontier.pop()
        for v in network.neighbors(u):
            v = int(v)
            if v != victim and v not in seen:
                seen.add(v)
                frontier.append(v)
    return len(seen) == n - 1


def _draw_nodes(rng, eligible: Sequence[int], count: int) -> List[int]:
    if count <= 0 or not eligible:
        return []
    count = min(count, len(eligible))
    chosen = rng.choice(len(eligible), size=count, replace=False)
    return sorted(eligible[int(i)] for i in chosen)


def sample_campaign(
    profile: IntensityProfile,
    topology: Dict[str, object],
    workload: Dict[str, object],
    seed: int,
    ablation: str = "none",
) -> ChaosCampaign:
    """Draw one valid campaign from the profile's ranges.

    The draw order is fixed (Byzantine assignment, crashes, link churn,
    jam windows, adversary knobs) so a given seed always yields the
    same campaign regardless of which fault families end up active.
    """
    # dedicated sampling stream, decoupled from the protocol/adversary
    # streams that also derive from ``seed``
    rng = make_rng(np.random.SeedSequence([0xC4A05, int(seed)]))
    network = build_topology_spec(topology)
    packets = build_workload_spec(network, workload)
    n = network.n
    k = max(1, len(packets))
    leader_guess = max(p.origin for p in packets) if packets else n - 1

    horizon = max(64, int(math.ceil(
        profile.horizon_factor * theorem2_total_bound(
            n, network.diameter, network.max_degree, k
        )
    )))

    # -- Byzantine assignment (drawn first so crashes avoid insiders:
    # schedule.validate rejects a node that both crashes and lies) -----
    byz_nodes: List[int] = []
    byz_mode: Optional[str] = None
    if profile.p_byzantine > 0 and rng.random() < profile.p_byzantine:
        frac = _uniform(rng, *profile.byzantine_frac)
        eligible = [v for v in range(n) if v != leader_guess]
        byz_nodes = _draw_nodes(
            rng, eligible, int(math.floor(frac * len(eligible)))
        )
        if byz_nodes:
            byz_mode = str(
                profile.byzantine_modes[
                    _randint(rng, 0, len(profile.byzantine_modes) - 1)
                ]
            )
        else:
            byz_nodes = []

    # -- crashes (with optional recoveries) ----------------------------
    schedule = FaultSchedule()
    frac = _uniform(rng, *profile.crash_frac)
    crash_eligible = [
        v for v in range(n)
        if v not in byz_nodes
        and (profile.allow_leader_crash or v != leader_guess)
    ]
    crashed = _draw_nodes(
        rng, crash_eligible, int(math.floor(frac * len(crash_eligible)))
    )
    for node in crashed:
        if rng.random() < profile.p_symbolic:
            stage = STAGES[_randint(rng, 0, len(STAGES) - 1)]
            schedule.crash(node, after_stage=stage)
        else:
            at = _randint(rng, 0, horizon - 1)
            schedule.crash(node, at_round=at)
            if rng.random() < profile.recover_prob:
                schedule.recover(
                    node, at_round=at + _randint(rng, 1, max(2, horizon // 3))
                )

    # -- link churn (never touching a crashing node, so the schedule's
    # dead-node ordering check holds by construction) ------------------
    crashed_set = set(crashed)
    edges = [
        (u, int(v))
        for u in range(n)
        for v in network.neighbors(u)
        if u < int(v) and u not in crashed_set and int(v) not in crashed_set
    ]
    for _ in range(_randint(rng, *profile.link_events)):
        if not edges:
            break
        edge = edges[_randint(rng, 0, len(edges) - 1)]
        down_at = _randint(rng, 0, horizon - 1)
        schedule.link_down(edge, at_round=down_at)
        if rng.random() < profile.link_restore_prob:
            schedule.link_up(
                edge,
                at_round=down_at + _randint(rng, 1, max(2, horizon // 3)),
            )

    # -- jam windows (same-node-set overlap is rejected by validate, so
    # conflicting draws are skipped rather than emitted) ---------------
    taken: Dict[frozenset, List[Tuple[int, int]]] = {}
    for _ in range(_randint(rng, *profile.jam_window_count)):
        nodes = frozenset(_draw_nodes(
            rng, range(n), _randint(rng, *profile.jam_node_count)
        ))
        if not nodes:
            continue
        start = _randint(rng, 0, horizon - 1)
        stop = start + _randint(rng, *profile.jam_len)
        prob = _uniform(rng, *profile.jam_prob)
        if any(start < s2 and s1 < stop for s1, s2 in taken.get(nodes, ())):
            continue
        taken.setdefault(nodes, []).append((start, stop))
        schedule.jam(nodes, start=start, stop=stop, prob=min(1.0, prob))

    # -- adversary knobs -----------------------------------------------
    jam_prob = (
        _uniform(rng, *profile.adv_jam_prob)
        if rng.random() < profile.p_adv_jam else 0.0
    )
    corrupt_rate = (
        _uniform(rng, *profile.corrupt_rate)
        if rng.random() < profile.p_corrupt else 0.0
    )
    jam_budget = (
        _randint(rng, *profile.jam_budget)
        if rng.random() < profile.p_jam_budget else None
    )

    # -- topology churn + continuous traffic (a SEPARATE seeded stream:
    # campaigns sampled before churn existed keep their exact bytes) ---
    churn_rng = make_rng(np.random.SeedSequence([0xC4A06, int(seed)]))
    churn: Optional[ChurnSchedule] = None
    traffic: Optional[Dict[str, object]] = None
    continuous = (
        profile.p_continuous > 0
        and churn_rng.random() < profile.p_continuous
    )
    # every node the fault schedule or adversary already commits to
    # must stay a member for the whole run, so churn never invalidates
    # the schedule (validate's churn cross-checks hold by construction)
    pinned = {leader_guess, *byz_nodes}
    for e in schedule.events:
        if e.node >= 0:
            pinned.add(e.node)
        if e.edge is not None:
            pinned.update(e.edge)
    for w in schedule.jam_windows:
        pinned.update(w.nodes)
    churn_horizon = horizon
    if profile.p_churn > 0 and churn_rng.random() < profile.p_churn:
        churn_horizon = (
            _randint(churn_rng, *profile.continuous_rounds)
            if continuous else horizon
        )
        drawn = random_churn_schedule(
            network,
            churn_horizon,
            seed=churn_rng,
            leave_frac=_uniform(churn_rng, *profile.churn_leave_frac),
            join_frac=_uniform(churn_rng, *profile.churn_join_frac),
            edge_flips=_randint(churn_rng, *profile.churn_edge_flips),
            rejoin_prob=profile.churn_rejoin_prob,
            partition_prob=profile.churn_partition_prob,
            exclude=pinned,
        )
        if drawn.events or drawn.initially_absent:
            churn = drawn

    # -- adversarial extensions (a THIRD seeded stream: campaigns
    # sampled before the adversarial layer existed keep their exact
    # fault and churn/traffic bytes) -----------------------------------
    adv_rng = make_rng(np.random.SeedSequence([0xC4A07, int(seed)]))
    churn_adversarial: Optional[Dict[str, object]] = None
    quarantined: Tuple[int, ...] = ()

    # (a) worst-case churn: replace the random schedule with one lowered
    # from a serializable budget-constrained spec (the spec rides on the
    # campaign so the adversarial_budget_respected oracle can re-lower
    # it and demand a byte-identical schedule)
    if (churn is not None
            and profile.p_adversarial_churn > 0
            and adv_rng.random() < profile.p_adversarial_churn):
        strategy = str(profile.adv_churn_strategies[
            _randint(adv_rng, 0, len(profile.adv_churn_strategies) - 1)
        ])
        spec = AdversarialChurnSpec(
            strategy=strategy,
            horizon=max(4, churn_horizon),
            seed=int(seed),
            exclude=tuple(sorted(pinned)),
        )
        lowered = spec.build(network)
        if lowered.events or lowered.initially_absent:
            churn = lowered
            churn_adversarial = spec.to_json()

    # (b) insider re-join laundering probe: one insider leaves and
    # re-joins mid-run, exercising the persistent-quarantine admission
    # path.  Skipped when (a) fired, so the replayed spec stays
    # byte-identical to the lowered schedule.
    if (continuous and byz_nodes and churn_adversarial is None
            and profile.p_insider_rejoin > 0
            and adv_rng.random() < profile.p_insider_rejoin):
        touched = set()
        for e in schedule.events:
            if e.node >= 0:
                touched.add(e.node)
            if e.edge is not None:
                touched.update(e.edge)
        for w in schedule.jam_windows:
            touched.update(w.nodes)
        candidates = [v for v in byz_nodes if v not in touched]
        if candidates:
            insider = candidates[
                _randint(adv_rng, 0, len(candidates) - 1)
            ]
            if churn is None:
                churn = ChurnSchedule()
            leave_at = _randint(
                adv_rng, 1, max(2, profile.continuous_rounds[0] // 2)
            )
            churn.leave(insider, at_round=leave_at)
            churn.join(
                insider, at_round=leave_at + _randint(adv_rng, 50, 400)
            )

    # (c) carried quarantine: one identity convicted in an earlier run
    # enters already blacklisted.  Candidates must leave the footprint
    # connected (quarantine is not allowed to honestly partition an
    # expect_delivery run) and must not be the sole target of a jam
    # window (validate rejects windows that can never take effect).
    if (profile.p_carried_quarantine > 0
            and adv_rng.random() < profile.p_carried_quarantine):
        solo_jammed = {
            next(iter(w.nodes)) for w in schedule.jam_windows
            if len(w.nodes) == 1
        }
        candidates = [
            v for v in range(n)
            if v != leader_guess
            and v not in byz_nodes
            and v not in solo_jammed
            and _connected_without(network, v)
        ]
        if candidates:
            quarantined = (candidates[
                _randint(adv_rng, 0, len(candidates) - 1)
            ],)

    if continuous:
        traffic = {
            "process": {
                "kind": "poisson",
                "rate": round(_uniform(churn_rng, *profile.traffic_rate), 6),
                "size_bits": required_packet_bits(n),
                "seed": int(seed),
            },
            "rounds": (
                churn.max_round + _randint(churn_rng, 500, 1500)
                if churn is not None
                else _randint(churn_rng, *profile.continuous_rounds)
            ),
            "policy": ContinuousPolicy(
                queue_capacity=_randint(churn_rng, *profile.queue_capacity),
                drop_policy=DROP_POLICIES[
                    _randint(churn_rng, 0, len(DROP_POLICIES) - 1)
                ],
                slo_rounds=_randint(churn_rng, *profile.slo_rounds),
            ).to_json(),
        }

    campaign = ChaosCampaign(
        topology=dict(topology),
        workload=dict(workload),
        seed=int(seed),
        schedule=schedule,
        jam_prob=round(jam_prob, 6),
        corrupt_rate=round(corrupt_rate, 6),
        jam_budget=jam_budget,
        adversary_seed=int(seed),
        byzantine_nodes=tuple(byz_nodes),
        byzantine_mode=byz_mode,
        authentication=bool(byz_nodes),
        profile=profile.name,
        expect_delivery=profile.expect_delivery,
        ablation=ablation,
        churn=churn,
        traffic=traffic,
        quarantined=quarantined,
        churn_adversarial=churn_adversarial,
    )
    # the sampler's contract: what it emits is always valid
    campaign.schedule.validate(
        n, byzantine=campaign.byzantine_nodes, churn=campaign.churn,
        quarantined=campaign.quarantined,
    )
    return campaign


def profile_from_json(data: dict) -> IntensityProfile:
    """Rebuild a profile from a plain dict (artifact round trip)."""
    kwargs = {}
    for f in fields(IntensityProfile):
        if f.name in data:
            value = data[f.name]
            kwargs[f.name] = tuple(value) if isinstance(value, list) else value
    return IntensityProfile(**kwargs)
