"""Invariant oracles: what every chaos trial must satisfy.

Each oracle inspects one :class:`~repro.resilience.chaos.runner.
TrialExecution` (the supervised result plus the dual transcripts the
runner records) and returns an :class:`OracleVerdict`.  Two categories:

**safety** — must hold under *any* fault load; a violation is a bug in
the pipeline, the fault layer, or the accounting, never an acceptable
degradation:

- ``no_mis_decode`` / ``no_mis_attribution`` — integrity and
  authentication held: nothing decoded to a wrong payload, no honest
  node was blamed for an insider's row;
- ``drop_accounting`` — every reception the channel produced but the
  protocol never saw is accounted for by exactly one fault counter
  (dead receiver, downed link, scheduled jam, adversary jam, Byzantine
  swallow), and every delivered-but-altered message by the corruption
  counter;
- ``reception_rule`` — the pre-fault transcript replays exactly against
  the underlying collision model (the paper's reception rule held in
  every round, faults included on the transmit side);
- ``replay_receptions`` — the fault layer itself is deterministic: a
  fresh fault network fed the recorded transmissions at the recorded
  clocks reproduces the post-fault receptions bit-for-bit;
- ``lost_justified`` — a packet was written off only because its origin
  died, departed, or was convicted, never silently;
- ``budget_respected`` — the supervisor never exceeded its declared
  round budget;
- ``no_phantom_delivery`` — no reception landed at a node the churn
  timeline says was absent that round (the ``leaky_churn`` ablation
  plants exactly this bug for the oracle's self-test);
- ``queue_bound`` — replaying the continuous driver's audit log shows
  every per-node queue stayed within its declared capacity, and the
  surviving in-flight set matches the books;
- ``slo_accounting`` — the continuous accounting identity and the
  SLO/latency histogram recompute exactly from the audit log (the
  oracle rebuilds the books; it never trusts the counters);
- ``no_blacklist_escape`` — a conviction is forever: carried and
  run-time convictions survive to the end of the run, the quarantine
  registry never forgets one (the ``amnesiac_blacklist`` ablation
  plants exactly this bug for the oracle's self-test), no convicted
  identity re-enters a delivery path, and no convicted identity is
  re-admitted at the join gate;
- ``adversarial_budget_respected`` — an adversarial churn schedule
  re-lowers byte-identically from the spec riding on the campaign and
  stays within its declared event/absence/edge budget.

**liveness** — hold only inside the supervisor's recovery envelope, so
they are gated on the campaign's ``expect_delivery`` flag and on the
final survivor graph actually being connected:

- ``delivery`` — every honest-reachable survivor got every packet that
  still had an alive origin;
- ``round_bound`` — the run finished within ``round_bound_factor``
  times the paper's Theorem 2 bound for the instance (the factor
  absorbs the unit-constant bound's slack plus retry overhead; see
  ``DEFAULT_ROUND_BOUND_FACTOR``);
- ``joiner_catchup`` — a node that joins (and stays) attaches to the
  structure within the repair envelope, asserted only on trials whose
  other fault families cannot starve the repair pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.complexity import theorem2_total_bound
from repro.radio.transcript import verify_transcript

#: Calibrated against the R1–R3 benchmark topologies: fault-free
#: supervised runs land at 40–60× the unit-constant Theorem 2 bound
#: (the constant absorbed by the O(·)), and retries/repairs under the
#: light/medium profiles add up to ~2× on top.  200 leaves generous
#: slack above both while still catching runaway loops (a watchdog trip
#: burns the whole budget, which is far beyond this ceiling on every
#: bundled topology).
DEFAULT_ROUND_BOUND_FACTOR = 200.0

#: Oracle catalog: name -> category, in evaluation order.
ORACLES: Dict[str, str] = {
    "no_mis_decode": "safety",
    "no_mis_attribution": "safety",
    "drop_accounting": "safety",
    "reception_rule": "safety",
    "replay_receptions": "safety",
    "lost_justified": "safety",
    "budget_respected": "safety",
    "no_phantom_delivery": "safety",
    "queue_bound": "safety",
    "slo_accounting": "safety",
    "no_blacklist_escape": "safety",
    "adversarial_budget_respected": "safety",
    "delivery": "liveness",
    "round_bound": "liveness",
    "joiner_catchup": "liveness",
}


@dataclass
class OracleVerdict:
    """One oracle's judgment of one trial."""

    name: str
    category: str
    passed: bool
    detail: str = ""
    skipped: bool = False

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "passed": self.passed,
            "detail": self.detail,
            "skipped": self.skipped,
        }

    @classmethod
    def from_json(cls, data: dict) -> "OracleVerdict":
        return cls(
            name=data["name"],
            category=data.get("category", ORACLES.get(data["name"], "?")),
            passed=bool(data["passed"]),
            detail=data.get("detail", ""),
            skipped=bool(data.get("skipped", False)),
        )


def violated(verdicts: List[OracleVerdict]) -> List[OracleVerdict]:
    """The verdicts that actually failed (skipped ones never count)."""
    return [v for v in verdicts if not v.passed and not v.skipped]


def _ok(name: str, detail: str = "") -> OracleVerdict:
    return OracleVerdict(name, ORACLES[name], True, detail)


def _fail(name: str, detail: str) -> OracleVerdict:
    return OracleVerdict(name, ORACLES[name], False, detail)


def _skip(name: str, detail: str) -> OracleVerdict:
    return OracleVerdict(name, ORACLES[name], True, detail, skipped=True)


def _no_result(name: str) -> OracleVerdict:
    """Skip verdict for supervised-result oracles on continuous trials
    (no :class:`SupervisedResult` exists to inspect)."""
    return _skip(
        name, "continuous-mode trial; no supervised result to audit"
    )


# ----------------------------------------------------------------------
# Safety oracles
# ----------------------------------------------------------------------

def check_no_mis_decode(execution) -> OracleVerdict:
    r = execution.result if execution.result is not None \
        else execution.continuous
    if r is None:
        return _no_result("no_mis_decode")
    if r.mis_decodes:
        return _fail(
            "no_mis_decode",
            f"{r.mis_decodes} corrupted payload(s) passed the integrity "
            f"check and decoded to a wrong message",
        )
    return _ok("no_mis_decode")


def check_no_mis_attribution(execution) -> OracleVerdict:
    r = execution.result if execution.result is not None \
        else execution.continuous
    if r is None:
        return _no_result("no_mis_attribution")
    if r.mis_attributions:
        return _fail(
            "no_mis_attribution",
            f"{r.mis_attributions} poisoned matrix row(s) were attributed "
            f"to an honest node",
        )
    return _ok("no_mis_attribution")


def check_drop_accounting(execution) -> OracleVerdict:
    """Inner receptions − outer receptions == Σ drop counters, and
    inner/outer message mismatches == the corruption counter.

    The inner transcript records what the collision model resolved
    (post crash-filter, post insider lies); the outer one records what
    the protocol saw.  The difference is exactly the fault layer's
    doing, so it must match the fault layer's own books.
    """
    inner, outer = execution.inner_transcript, execution.outer_transcript
    net = execution.fault_net
    if len(inner) != len(outer):
        return _fail(
            "drop_accounting",
            f"transcript length mismatch: inner {len(inner)} rounds, "
            f"outer {len(outer)}",
        )
    dropped = 0
    mismatched = 0
    for i, (pre, post) in enumerate(zip(inner, outer)):
        extra = set(post.received) - set(pre.received)
        if extra:
            return _fail(
                "drop_accounting",
                f"round {i}: receivers {sorted(extra)} appear post-fault "
                f"but not pre-fault (the fault layer invented receptions)",
            )
        dropped += len(pre.received) - len(post.received)
        mismatched += sum(
            1 for v, msg in post.received.items()
            if msg is not pre.received[v] and msg != pre.received[v]
        )
    booked = (
        net.rx_suppressed_dead + net.rx_suppressed_link
        + net.rx_suppressed_jam + net.rx_jammed_adversary
        + net.rx_swallowed_byzantine
    )
    if dropped != booked:
        return _fail(
            "drop_accounting",
            f"{dropped} receptions vanished between the channel and the "
            f"protocol but the counters book {booked} "
            f"(dead={net.rx_suppressed_dead} link={net.rx_suppressed_link} "
            f"jam={net.rx_suppressed_jam} adv={net.rx_jammed_adversary} "
            f"byz={net.rx_swallowed_byzantine})",
        )
    if mismatched != net.rx_corrupted:
        return _fail(
            "drop_accounting",
            f"{mismatched} delivered messages differ from what the channel "
            f"resolved but rx_corrupted books {net.rx_corrupted}",
        )
    return _ok(
        "drop_accounting",
        f"{dropped} drops and {mismatched} corruptions, all booked",
    )


def check_reception_rule(execution) -> OracleVerdict:
    """The pre-fault transcript must replay exactly against the
    collision model — transmit-side faults (crashes, insider lies) are
    already inside it, so this is the reception rule under faults.

    Under churn the transcript was recorded *above* the churn layer, so
    exact re-resolution runs against a fresh :class:`~repro.dynamic.
    churn.ChurnNetwork` advanced to each entry's recorded clock (plain
    :func:`verify_transcript` would wrongly judge absent nodes and
    severed edges against the static footprint)."""
    if execution.campaign.churn is not None:
        fresh = execution.rebuild_channel()
        mismatches = []
        for entry in execution.inner_transcript:
            if entry.clock is not None:
                fresh.advance_to(entry.clock)
            expected = fresh.resolve_round(entry.transmissions)
            if expected != entry.received:
                mismatches.append(
                    f"clock {entry.clock}: expected receivers "
                    f"{sorted(expected)}, transcript has "
                    f"{sorted(entry.received)}"
                )
        if mismatches:
            sample = "; ".join(mismatches[:3])
            return _fail(
                "reception_rule",
                f"{len(mismatches)} churn-model violation(s): {sample}",
            )
        return _ok(
            "reception_rule",
            f"{len(execution.inner_transcript)} rounds re-resolved "
            f"exactly against the churn timeline",
        )
    problems = verify_transcript(
        execution.base_network, execution.inner_transcript
    )
    if problems:
        sample = "; ".join(problems[:3])
        return _fail(
            "reception_rule",
            f"{len(problems)} reception-rule violation(s): {sample}",
        )
    return _ok(
        "reception_rule",
        f"{len(execution.inner_transcript)} rounds re-resolved exactly",
    )


def check_replay_receptions(execution) -> OracleVerdict:
    """Rebuild the fault stack from the campaign and re-feed the
    recorded transmissions at the recorded clocks: the post-fault
    receptions must match bit-for-bit.

    Skipped for ``id_inflation`` insiders (their behavior keys off the
    supervisor's ``notice_leader`` calls, which a transcript replay has
    no way to reproduce) — campaign-level replay via
    :func:`repro.resilience.chaos.artifact.replay_artifact` still
    covers that mode end to end.
    """
    from repro.resilience.chaos.runner import build_fault_stack

    campaign = execution.campaign
    if campaign.byzantine_mode == "id_inflation":
        return _skip(
            "replay_receptions",
            "id_inflation insiders react to notice_leader, which a "
            "transcript replay cannot reproduce",
        )
    try:
        replay_schedule = replay_schedule_from_events(
            execution.fault_net.events_applied
        )
        # jam windows are round-indexed state, not events; carry them over
        replay_schedule.jam_windows.extend(campaign.schedule.jam_windows)
        fresh = build_fault_stack(
            campaign,
            execution.rebuild_channel(),
            schedule=replay_schedule,
        )
    except ValueError as exc:
        return _skip(
            "replay_receptions",
            f"recorded event stream not re-playable as a schedule: {exc}",
        )
    for entry in execution.outer_transcript:
        if entry.clock is not None:
            fresh.advance_to(entry.clock)
        got = fresh.resolve_round(entry.transmissions)
        if got != entry.received:
            return _fail(
                "replay_receptions",
                f"round clock={entry.clock}: replay produced receivers "
                f"{sorted(got)} but the run recorded "
                f"{sorted(entry.received)} — the fault layer is not "
                f"deterministic under its seed",
            )
    return _ok(
        "replay_receptions",
        f"{len(execution.outer_transcript)} rounds replayed bit-for-bit",
    )


def check_lost_justified(execution) -> OracleVerdict:
    """A packet may be written off only if its origin died, departed
    (churn), or was convicted — never silently."""
    r = execution.result
    if r is None:
        return _no_result("lost_justified")
    if not r.packets_lost:
        return _ok("lost_justified")
    dead_ever = set(execution.campaign.schedule.crashed_ever)
    dead_ever |= set(execution.fault_net.dead)
    if execution.campaign.churn is not None:
        # an origin whose membership ever changed (late joiner, leaver)
        # may have been legitimately unreachable when written off
        churn = execution.campaign.churn
        timeline = churn.membership()
        dead_ever |= set(churn.initially_absent)
        dead_ever |= {
            v for v in range(execution.base_network.n)
            if timeline.toggles(v)
        }
    convicted = set(r.blacklisted)
    origin_of = {p.pid: p.origin for p in execution.packets}
    unjustified = [
        pid for pid in r.packets_lost
        if origin_of.get(pid) not in dead_ever | convicted
    ]
    if unjustified:
        return _fail(
            "lost_justified",
            f"packets {unjustified} were declared lost but their origins "
            f"never crashed and were never blacklisted",
        )
    return _ok(
        "lost_justified",
        f"{len(r.packets_lost)} lost packet(s), all with dead or "
        f"convicted origins",
    )


def check_budget_respected(execution) -> OracleVerdict:
    r = execution.result
    if r is None:
        return _no_result("budget_respected")
    if r.total_rounds > r.round_budget:
        return _fail(
            "budget_respected",
            f"run consumed {r.total_rounds} rounds against a declared "
            f"budget of {r.round_budget}",
        )
    return _ok("budget_respected")


# ----------------------------------------------------------------------
# Liveness oracles
# ----------------------------------------------------------------------

def _honest_component(execution) -> set:
    """Nodes reachable from the leader over up-links, through alive,
    honest, non-convicted nodes (the set the supervisor can actually
    serve)."""
    r = execution.result
    net = execution.fault_net
    base = execution.base_network
    excluded = (
        set(net.dead) | set(execution.campaign.byzantine_nodes)
        | set(r.blacklisted) | set(r.suspected)
    )
    if r.leader in excluded or r.leader < 0:
        return set()
    down = net.down_links
    seen = {r.leader}
    queue = deque([r.leader])
    while queue:
        u = queue.popleft()
        for v in base.neighbors(u):
            v = int(v)
            if v in seen or v in excluded:
                continue
            if down and frozenset((u, v)) in down:
                continue
            seen.add(v)
            queue.append(v)
    return seen


def check_delivery(execution) -> OracleVerdict:
    campaign = execution.campaign
    r = execution.result
    if r is None:
        return _no_result("delivery")
    if not campaign.expect_delivery:
        return _skip(
            "delivery",
            f"profile {campaign.profile!r} is outside the recovery "
            f"envelope (safety-only)",
        )
    if campaign.churn is not None:
        return _skip(
            "delivery",
            "topology churn voids the one-shot delivery guarantee "
            "(departed nodes cannot be served; joiner catch-up is the "
            "continuous driver's business, audited by joiner_catchup)",
        )
    if execution.fault_net.down_links:
        # Found by this fuzzer and kept as a documented envelope limit:
        # the supervisor re-parents crash-orphans but never reroutes
        # around a severed link, so a link that is still down when the
        # run ends voids the delivery guarantee even if the survivor
        # graph stays connected (see docs/chaos.md).
        return _skip(
            "delivery",
            f"{len(execution.fault_net.down_links)} link(s) still down "
            f"at end of run; link repair is outside the supervisor's "
            f"envelope",
        )
    reachable = _honest_component(execution)
    honest_alive = {
        v for v in range(execution.base_network.n)
        if v not in execution.fault_net.dead
        and v not in campaign.byzantine_nodes
        and v not in r.blacklisted
        and v not in r.suspected
    }
    if not reachable or reachable != honest_alive:
        return _skip(
            "delivery",
            "faults partitioned the honest survivor graph (or removed "
            "the leader); no delivery guarantee applies",
        )
    if r.all_lost and not r.packets_undelivered:
        return _ok(
            "delivery", "every packet origin died before hand-off"
        )
    if not r.success:
        reasons = []
        if r.watchdog_tripped:
            reasons.append("watchdog tripped")
        if r.packets_undelivered:
            reasons.append(f"{len(r.packets_undelivered)} undelivered")
        if r.informed_fraction < 1.0:
            reasons.append(
                f"informed_fraction={r.informed_fraction:.3f}"
            )
        return _fail(
            "delivery",
            "honest survivors stayed connected yet the run failed: "
            + (", ".join(reasons) or "unknown"),
        )
    return _ok(
        "delivery",
        f"{len(reachable)} honest survivors all informed",
    )


def check_round_bound(
    execution, round_bound_factor: float = DEFAULT_ROUND_BOUND_FACTOR
) -> OracleVerdict:
    campaign = execution.campaign
    r = execution.result
    if r is None:
        return _no_result("round_bound")
    if not campaign.expect_delivery:
        return _skip(
            "round_bound",
            f"profile {campaign.profile!r} is safety-only",
        )
    if campaign.churn is not None:
        return _skip(
            "round_bound",
            "topology churn adds repair rounds outside the paper's "
            "static-instance bound",
        )
    if not r.success:
        return _skip(
            "round_bound", "run did not complete; no bound applies"
        )
    if r.retries or r.reelections:
        # A single stage retry re-buys that stage's (escalated) budget,
        # which for collection dwarfs the paper bound by orders of
        # magnitude — recovery cost is the policy's business and is
        # audited by budget_respected.  The paper's multiple only
        # constrains clean runs.
        return _skip(
            "round_bound",
            f"run needed {r.retries} retries / {r.reelections} "
            f"re-elections; the paper bound constrains clean runs only",
        )
    base = execution.base_network
    bound = round_bound_factor * theorem2_total_bound(
        base.n, base.diameter, base.max_degree, max(r.k, 1)
    )
    if r.total_rounds > bound:
        return _fail(
            "round_bound",
            f"run took {r.total_rounds} rounds; "
            f"{round_bound_factor:g} x theorem-2 bound is "
            f"{bound:.0f}",
        )
    return _ok(
        "round_bound",
        f"{r.total_rounds} rounds <= {bound:.0f} "
        f"({round_bound_factor:g} x theorem 2)",
    )


# ----------------------------------------------------------------------
# Churn / continuous-traffic oracles
# ----------------------------------------------------------------------

def check_no_phantom_delivery(execution) -> OracleVerdict:
    """No reception may land at a node the churn timeline says is
    absent in that round.  Audited two ways: the recorded transcript is
    replayed against the membership timeline, and the live churn
    layer's own phantom counter must agree (zero)."""
    campaign = execution.campaign
    if campaign.churn is None:
        return _skip("no_phantom_delivery", "campaign has no churn")
    timeline = campaign.churn.membership()
    phantoms = []
    for entry in execution.inner_transcript:
        if entry.clock is None:
            continue
        for v in entry.received:
            if not timeline.is_present(v, entry.clock):
                phantoms.append((entry.clock, int(v)))
    stats = execution.fault_net.churn_stats()
    booked = int(stats.get("rx_phantom_delivered", 0))
    if phantoms:
        sample = ", ".join(
            f"round {c}: node {v}" for c, v in phantoms[:3]
        )
        return _fail(
            "no_phantom_delivery",
            f"{len(phantoms)} reception(s) by departed/absent nodes "
            f"({sample}); churn layer books {booked}",
        )
    if booked:
        return _fail(
            "no_phantom_delivery",
            f"churn layer booked {booked} phantom deliveries that the "
            f"transcript never showed (counter/transcript divergence)",
        )
    return _ok(
        "no_phantom_delivery",
        f"{len(execution.inner_transcript)} rounds, no receptions by "
        f"absent nodes",
    )


def check_queue_bound(execution) -> OracleVerdict:
    """Replay the audit log as a queue simulation: every enqueue keeps
    its node's queue within capacity, every dispatch/eviction/handoff
    removes a packet that was actually queued there, and the surviving
    multiset matches the reported in-flight count and peak length."""
    c = execution.continuous
    if c is None:
        return _skip("queue_bound", "one-shot campaign; no queues")
    cap = c.queue_capacity
    sizes: Dict[int, int] = {}
    loc: Dict[int, int] = {}  # pid -> node currently holding it
    peak = 0
    for ev in c.audit_log:
        kind = ev.kind
        if kind == "enqueue":
            if ev.pid in loc:
                return _fail(
                    "queue_bound",
                    f"round {ev.round}: pid {ev.pid} enqueued at node "
                    f"{ev.node} while still queued at node {loc[ev.pid]}",
                )
            loc[ev.pid] = ev.node
            sizes[ev.node] = sizes.get(ev.node, 0) + 1
            peak = max(peak, sizes[ev.node])
            if sizes[ev.node] > cap:
                return _fail(
                    "queue_bound",
                    f"round {ev.round}: node {ev.node} queue grew to "
                    f"{sizes[ev.node]} > capacity {cap}",
                )
        elif kind == "dispatch":
            if loc.get(ev.pid) != ev.node:
                return _fail(
                    "queue_bound",
                    f"round {ev.round}: pid {ev.pid} dispatched from "
                    f"node {ev.node} but queued at {loc.get(ev.pid)}",
                )
            sizes[ev.node] -= 1
            del loc[ev.pid]
        elif kind in ("dropped_queue", "dropped_handoff",
                      "dropped_quarantine"):
            # an eviction (drop_oldest), a conviction purge, or a
            # refused newcomer — only the first two remove a packet
            # that was actually queued ("drop_quarantine" discards an
            # item already removed by its dispatch, so it is ignored)
            if loc.get(ev.pid) == ev.node:
                sizes[ev.node] -= 1
                del loc[ev.pid]
        elif kind in ("handoff", "drop_handoff"):
            # either way the packet leaves the departed node's queue
            src = loc.pop(ev.pid, None)
            if src is not None:
                sizes[src] -= 1
    in_flight = sum(sizes.values())
    if in_flight != c.in_flight:
        return _fail(
            "queue_bound",
            f"audit replay leaves {in_flight} packet(s) queued but the "
            f"books say in_flight={c.in_flight}",
        )
    if peak != c.max_queue_len:
        return _fail(
            "queue_bound",
            f"audit replay peaks at queue length {peak} but the books "
            f"say max_queue_len={c.max_queue_len}",
        )
    if c.max_queue_len > cap:
        return _fail(
            "queue_bound",
            f"reported max_queue_len={c.max_queue_len} exceeds "
            f"capacity {cap}",
        )
    return _ok(
        "queue_bound",
        f"{len(c.audit_log)} audit events replayed; peak {peak} <= "
        f"capacity {cap}, {in_flight} in flight",
    )


def check_slo_accounting(execution) -> OracleVerdict:
    """Recompute the continuous books from the audit log and the
    delivery list: the accounting identity, every drop bucket, the SLO
    violation count, and the latency histogram must all match what the
    driver reported."""
    from repro.dynamic.continuous import latency_bucket

    c = execution.continuous
    if c is None:
        return _skip("slo_accounting", "one-shot campaign; no SLOs")
    counts: Dict[str, int] = {}
    for ev in c.audit_log:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1
    recomputed = {
        "arrivals": counts.get("arrive", 0),
        "delivered": counts.get("deliver", 0),
        "dropped_queue": counts.get("dropped_queue", 0),
        "dropped_handoff": (
            counts.get("dropped_handoff", 0)
            + counts.get("drop_handoff", 0)
        ),
        "dropped_retry": counts.get("drop_retry", 0),
        "dropped_quarantine": (
            counts.get("dropped_quarantine", 0)
            + counts.get("drop_quarantine", 0)
        ),
        "rejected": counts.get("reject", 0),
        "in_flight": c.in_flight,
    }
    books = c.accounting()
    if recomputed != books:
        diff = {
            k: (recomputed[k], books[k])
            for k in books if recomputed[k] != books[k]
        }
        return _fail(
            "slo_accounting",
            f"audit-log recomputation disagrees with the books "
            f"(recomputed, reported): {diff}",
        )
    if not c.accounting_exact:
        return _fail(
            "slo_accounting",
            f"accounting identity broken: {books}",
        )
    if len(c.deliveries) != c.delivered:
        return _fail(
            "slo_accounting",
            f"{len(c.deliveries)} delivery records vs delivered="
            f"{c.delivered}",
        )
    slo = sum(1 for _, a, d in c.deliveries if d - a > c.slo_rounds)
    if slo != c.slo_violations:
        return _fail(
            "slo_accounting",
            f"recomputed {slo} SLO violation(s) from the delivery "
            f"records but the books say {c.slo_violations}",
        )
    hist: Dict[int, int] = {}
    for _, a, d in c.deliveries:
        b = latency_bucket(d - a)
        hist[b] = hist.get(b, 0) + 1
    if hist != c.latency_histogram:
        return _fail(
            "slo_accounting",
            f"latency histogram mismatch: recomputed {hist}, reported "
            f"{c.latency_histogram}",
        )
    return _ok(
        "slo_accounting",
        f"books recomputed exactly: {c.arrivals} arrivals, "
        f"{c.delivered} delivered, {c.slo_violations} SLO violation(s)",
    )


def check_no_blacklist_escape(execution) -> OracleVerdict:
    """A conviction is forever.  One-shot: every carried conviction is
    still on the final blacklist.  Continuous: the registry never
    forgot a conviction, every convicted identity (carried or run-time)
    survives to the final quarantine set, no convicted identity touches
    a delivery path after its conviction round, and the join gate never
    re-admits one.  The ``amnesiac_blacklist`` ablation plants exactly
    the forget-on-leave bug this oracle exists to catch."""
    campaign = execution.campaign
    carried = set(campaign.quarantined)
    c = execution.continuous
    if c is None:
        r = execution.result
        if r is None or not carried:
            return _skip(
                "no_blacklist_escape",
                "no carried convictions in this one-shot campaign",
            )
        escaped = sorted(carried - set(r.blacklisted))
        if escaped:
            return _fail(
                "no_blacklist_escape",
                f"carried conviction(s) {escaped} missing from the "
                f"final blacklist {sorted(r.blacklisted)}",
            )
        return _ok(
            "no_blacklist_escape",
            f"{len(carried)} carried conviction(s) persisted",
        )

    convicted_at: Dict[int, int] = {}
    for v in carried:
        convicted_at[int(v)] = -1  # barred before round 0
    for v, rnd, _why in c.convictions:
        convicted_at.setdefault(int(v), int(rnd))
    if not convicted_at:
        return _skip(
            "no_blacklist_escape",
            "nothing carried or convicted in this run",
        )
    forgets = [
        h for h in c.quarantine_history if h.get("kind") == "forget"
    ]
    if forgets:
        sample = forgets[0]
        return _fail(
            "no_blacklist_escape",
            f"quarantine registry forgot {len(forgets)} conviction(s) "
            f"(first: node {sample.get('node')} at round "
            f"{sample.get('round')}) — convictions must survive "
            f"leave/re-join",
        )
    final = set(c.quarantine_final) | set(c.quarantined_carried)
    escaped = sorted(set(convicted_at) - final)
    if escaped:
        return _fail(
            "no_blacklist_escape",
            f"convicted identit(ies) {escaped} absent from the final "
            f"quarantine set {sorted(final)}",
        )
    relapses = [
        (ev.round, ev.node, ev.kind)
        for ev in c.audit_log
        if ev.kind in ("enqueue", "dispatch", "deliver", "handoff")
        and ev.node in convicted_at
        and ev.round > convicted_at[ev.node]
    ]
    if relapses:
        rnd, node, kind = relapses[0]
        return _fail(
            "no_blacklist_escape",
            f"{len(relapses)} delivery-path event(s) for convicted "
            f"identities after conviction (first: {kind} at node "
            f"{node}, round {rnd})",
        )
    readmitted = [
        rec for rec in c.admission_log
        if rec.get("admitted")
        and rec.get("claimed_id") in convicted_at
        and rec.get("round", 0) > convicted_at[rec["claimed_id"]]
    ]
    if readmitted:
        rec = readmitted[0]
        return _fail(
            "no_blacklist_escape",
            f"join gate re-admitted convicted identity "
            f"{rec['claimed_id']} at round {rec['round']}",
        )
    return _ok(
        "no_blacklist_escape",
        f"{len(convicted_at)} conviction(s) persisted; no forgets, "
        f"no post-conviction delivery-path activity, no re-admission",
    )


def check_adversarial_budget_respected(execution) -> OracleVerdict:
    """An adversarial churn schedule must re-lower byte-identically
    from the spec riding on the campaign, and must respect the spec's
    declared budget (event count, concurrent absences, concurrent
    severed edges) — an adversary that overspends its budget voids the
    experiment, not the protocol."""
    from repro.dynamic.churn import AdversarialChurnSpec

    campaign = execution.campaign
    if campaign.churn_adversarial is None:
        return _skip(
            "adversarial_budget_respected",
            "campaign has no adversarial churn spec",
        )
    spec = AdversarialChurnSpec.from_json(dict(campaign.churn_adversarial))
    if campaign.churn is None:
        return _fail(
            "adversarial_budget_respected",
            "adversarial spec present but no lowered churn schedule",
        )
    relowered = spec.build(execution.base_network)
    if relowered.to_json() != campaign.churn.to_json():
        return _fail(
            "adversarial_budget_respected",
            f"re-lowering the spec ({spec.strategy!r}, seed "
            f"{spec.seed}) does not reproduce the campaign's churn "
            f"schedule byte-for-byte",
        )
    n = execution.base_network.n
    violations = spec.budget.violations(campaign.churn, n)
    if violations:
        return _fail(
            "adversarial_budget_respected",
            "; ".join(violations),
        )
    return _ok(
        "adversarial_budget_respected",
        f"{spec.strategy!r} schedule re-lowered identically; "
        f"{len(campaign.churn.events)} event(s) within budget",
    )


def check_joiner_catchup(execution) -> OracleVerdict:
    """A joiner that stays must attach to the structure within the
    repair envelope (check cadence + one dispatch cycle + one repair
    pass).  Asserted only when no *other* fault family can starve the
    repair pass — jamming and corruption legitimately delay Decay-based
    attach beyond any fixed envelope."""
    from repro.dynamic.continuous import ContinuousPolicy

    c = execution.continuous
    campaign = execution.campaign
    if c is None:
        return _skip("joiner_catchup", "one-shot campaign")
    if campaign.churn is None or not c.joiners:
        return _skip("joiner_catchup", "no joiners in this campaign")
    if not campaign.expect_delivery:
        return _skip(
            "joiner_catchup",
            f"profile {campaign.profile!r} is safety-only",
        )
    if any(e.kind == "partition" for e in campaign.churn.events):
        return _skip(
            "joiner_catchup",
            "partition events can isolate a joiner for their whole "
            "duration; no attach envelope applies",
        )
    if (campaign.jam_prob > 0 or campaign.corrupt_rate > 0
            or campaign.schedule.jam_windows):
        return _skip(
            "joiner_catchup",
            "jamming/corruption can starve the repair pass; the attach "
            "envelope only binds churn-plus-crash trials",
        )
    policy = ContinuousPolicy.from_json(dict(campaign.traffic["policy"]))
    envelope = (
        policy.check_interval + 2 * c.max_cycle_rounds
        + c.repair_round_budget + 256
    )
    crashed = set(campaign.schedule.crashed_ever)
    base = execution.base_network
    late, stuck = [], []
    for rec in c.joiners:
        if rec.departed_again or rec.rejected:
            # a joiner the admission gate turned away is barred by
            # design; it owes no attach deadline
            continue
        if crashed.intersection(
            int(u) for u in base.neighbors(rec.node)
        ):
            # a crashed neighborhood can legitimately strand a joiner
            continue
        if rec.attach_round is not None:
            if rec.attach_round - rec.join_round > envelope:
                late.append(
                    f"node {rec.node} took "
                    f"{rec.attach_round - rec.join_round} rounds"
                )
        elif c.rounds - rec.join_round > envelope:
            stuck.append(f"node {rec.node} never attached")
    if late or stuck:
        return _fail(
            "joiner_catchup",
            f"attach envelope {envelope} rounds exceeded: "
            + "; ".join(late + stuck),
        )
    return _ok(
        "joiner_catchup",
        f"{len(c.joiners)} joiner(s) within the {envelope}-round "
        f"attach envelope",
    )


# ----------------------------------------------------------------------

def replay_schedule_from_events(events_applied):
    """Reconstruct a concrete, validated :class:`FaultSchedule` from a
    fault network's applied-event log.

    Symbolic (``after_stage``) events were pinned to concrete rounds
    when the supervisor materialized them, so the log is fully
    concrete.  No-op applications (a crash of an already-dead node, a
    recovery of an alive one, re-downing a downed link) are dropped —
    they changed nothing in the original run and
    :meth:`FaultSchedule.validate` rightly rejects contradictory
    timelines.
    """
    from repro.resilience.schedule import FaultSchedule

    schedule = FaultSchedule()
    dead = set()
    down = set()
    for clock, kind, target in events_applied:
        if kind == "crash":
            if target in dead:
                continue
            dead.add(target)
            schedule.crash(target, at_round=clock)
        elif kind == "recover":
            if target not in dead:
                continue
            dead.discard(target)
            schedule.recover(target, at_round=clock)
        elif kind == "link_down":
            key = frozenset(target)
            if key in down:
                continue
            down.add(key)
            schedule.link_down(tuple(target), at_round=clock)
        elif kind == "link_up":
            key = frozenset(target)
            if key not in down:
                continue
            down.discard(key)
            schedule.link_up(tuple(target), at_round=clock)
    return schedule


def run_oracles(
    execution,
    round_bound_factor: float = DEFAULT_ROUND_BOUND_FACTOR,
) -> List[OracleVerdict]:
    """Evaluate the full catalog against one trial, in catalog order."""
    return [
        check_no_mis_decode(execution),
        check_no_mis_attribution(execution),
        check_drop_accounting(execution),
        check_reception_rule(execution),
        check_replay_receptions(execution),
        check_lost_justified(execution),
        check_budget_respected(execution),
        check_no_phantom_delivery(execution),
        check_queue_bound(execution),
        check_slo_accounting(execution),
        check_no_blacklist_escape(execution),
        check_adversarial_budget_respected(execution),
        check_delivery(execution),
        check_round_bound(execution, round_bound_factor),
        check_joiner_catchup(execution),
    ]
