"""Delta-debugging shrinker: minimize a violating campaign.

A fuzzed campaign that trips an oracle usually carries far more chaos
than the bug needs — dozens of crashes, jam windows, and adversary
knobs, of which perhaps one crash matters.  :func:`shrink_campaign`
reduces the campaign to a *locally minimal* set of **fault atoms**:

- one atom per schedule event (crash / recover / link_down / link_up),
- one per jam window,
- one per Byzantine node,
- one per active adversary knob (reactive jam probability, corruption
  rate, jam budget),
- one per churn event and per initially-absent node, plus one for the
  whole continuous-traffic spec (dropping it turns the campaign back
  into a one-shot trial),
- one per carried quarantine conviction.

The algorithm is Zeller-style ddmin (partition the atom set, try each
chunk and each complement, refine granularity on failure to progress)
followed by a greedy single-atom elimination pass, so the result is
1-minimal: removing any single remaining atom makes the violation
disappear.  Every candidate is re-executed from scratch and judged by
the *same oracles that originally failed* — a candidate that fails a
different oracle does not count (that would be chasing a second bug),
and a candidate whose schedule no longer validates (e.g. a recovery
whose crash was removed) is simply skipped.

Everything is deterministic: campaigns are seeded, so re-execution is
exact and shrinking never flakes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional, Sequence, Set, Tuple

from repro.dynamic.churn import ChurnSchedule
from repro.resilience.schedule import FaultSchedule
from repro.resilience.chaos.fuzzer import ChaosCampaign, build_topology_spec
from repro.resilience.chaos.oracles import violated
from repro.resilience.chaos.runner import evaluate_campaign, make_policy

#: An atom is ("event", index) | ("jam", index) | ("byz", node) |
#: ("knob", name) | ("churn", index) | ("absent", node) |
#: ("quar", node).
Atom = Tuple[str, object]


def campaign_atoms(campaign: ChaosCampaign) -> List[Atom]:
    """Enumerate the removable fault atoms of a campaign."""
    atoms: List[Atom] = [
        ("event", i) for i in range(len(campaign.schedule.events))
    ]
    atoms += [
        ("jam", i) for i in range(len(campaign.schedule.jam_windows))
    ]
    atoms += [("byz", v) for v in campaign.byzantine_nodes]
    if campaign.jam_prob > 0.0:
        atoms.append(("knob", "jam_prob"))
    if campaign.corrupt_rate > 0.0:
        atoms.append(("knob", "corrupt_rate"))
    if campaign.jam_budget is not None and campaign.jam_budget > 0:
        atoms.append(("knob", "jam_budget"))
    if campaign.churn is not None:
        atoms += [
            ("churn", i) for i in range(len(campaign.churn.events))
        ]
        atoms += [
            ("absent", v)
            for v in sorted(campaign.churn.initially_absent)
        ]
    atoms += [("quar", v) for v in campaign.quarantined]
    if campaign.traffic is not None:
        atoms.append(("knob", "traffic"))
    return atoms


def rebuild_campaign(
    campaign: ChaosCampaign, kept: Sequence[Atom]
) -> ChaosCampaign:
    """The campaign with only ``kept`` atoms; raises ``ValueError`` if
    the reduced schedule is no longer internally consistent."""
    kept_set = set(kept)
    schedule = FaultSchedule(
        events=[
            e for i, e in enumerate(campaign.schedule.events)
            if ("event", i) in kept_set
        ],
        jam_windows=[
            w for i, w in enumerate(campaign.schedule.jam_windows)
            if ("jam", i) in kept_set
        ],
    )
    byz_nodes = tuple(
        v for v in campaign.byzantine_nodes if ("byz", v) in kept_set
    )
    churn = None
    if campaign.churn is not None:
        churn = ChurnSchedule(
            events=[
                e for i, e in enumerate(campaign.churn.events)
                if ("churn", i) in kept_set
            ],
            initially_absent=frozenset(
                v for v in campaign.churn.initially_absent
                if ("absent", v) in kept_set
            ),
        )
        if not churn.events and not churn.initially_absent:
            churn = None
    # the adversarial spec only describes the *full* lowered schedule;
    # once any churn atom is dropped the spec no longer matches, so it
    # is dropped with it (the budget oracle would otherwise rightly
    # flag the divergence)
    churn_adversarial = None
    if (campaign.churn_adversarial is not None
            and churn is not None
            and len(churn.events) == len(campaign.churn.events)
            and churn.initially_absent == campaign.churn.initially_absent):
        churn_adversarial = dict(campaign.churn_adversarial)
    traffic = (
        dict(campaign.traffic)
        if campaign.traffic is not None
        and ("knob", "traffic") in kept_set else None
    )
    reduced = dc_replace(
        campaign,
        schedule=schedule,
        byzantine_nodes=byz_nodes,
        byzantine_mode=campaign.byzantine_mode if byz_nodes else None,
        authentication=campaign.authentication and bool(byz_nodes),
        jam_prob=(
            campaign.jam_prob if ("knob", "jam_prob") in kept_set else 0.0
        ),
        corrupt_rate=(
            campaign.corrupt_rate
            if ("knob", "corrupt_rate") in kept_set else 0.0
        ),
        jam_budget=(
            campaign.jam_budget
            if ("knob", "jam_budget") in kept_set else None
        ),
        churn=churn,
        traffic=traffic,
        quarantined=tuple(
            v for v in campaign.quarantined if ("quar", v) in kept_set
        ),
        churn_adversarial=churn_adversarial,
    )
    n = build_topology_spec(reduced.topology).n
    if reduced.churn is not None:
        reduced.churn.validate(n)
    reduced.schedule.validate(
        n, byzantine=reduced.byzantine_nodes, churn=reduced.churn,
        quarantined=reduced.quarantined,
    )
    return reduced


@dataclass
class ShrinkResult:
    """Outcome of one shrinking run."""

    original: ChaosCampaign
    shrunk: ChaosCampaign
    target_oracles: Tuple[str, ...]
    atoms_before: int
    atoms_after: int
    evaluations: int
    converged: bool  #: False when the evaluation cap cut ddmin short

    def to_json(self) -> dict:
        return {
            "target_oracles": list(self.target_oracles),
            "atoms_before": self.atoms_before,
            "atoms_after": self.atoms_after,
            "evaluations": self.evaluations,
            "converged": self.converged,
            "shrunk_campaign": self.shrunk.to_json(),
        }


def shrink_campaign(
    campaign: ChaosCampaign,
    target_oracles: Sequence[str],
    preset: str = "default",
    round_bound_factor: Optional[float] = None,
    max_stage_retries: int = 4,
    max_reelections: int = 3,
    max_evaluations: int = 200,
) -> ShrinkResult:
    """ddmin the campaign down to a 1-minimal violating atom set.

    ``target_oracles`` names the oracles that must *still* fail for a
    candidate to count (normally the ones the original run violated).
    """
    targets: Set[str] = set(target_oracles)
    if not targets:
        raise ValueError("shrinking needs at least one target oracle")

    evals = 0
    capped = False

    def still_fails(kept: Sequence[Atom]) -> bool:
        nonlocal evals, capped
        if evals >= max_evaluations:
            capped = True
            return False
        try:
            candidate = rebuild_campaign(campaign, kept)
        except ValueError:
            return False  # inconsistent reduction; not a candidate
        evals += 1
        kwargs = {}
        if round_bound_factor is not None:
            kwargs["round_bound_factor"] = round_bound_factor
        _, verdicts = evaluate_campaign(
            candidate,
            policy=make_policy(
                candidate,
                max_stage_retries=max_stage_retries,
                max_reelections=max_reelections,
            ),
            preset=preset,
            **kwargs,
        )
        return bool(targets & {v.name for v in violated(verdicts)})

    atoms = campaign_atoms(campaign)
    if not still_fails(atoms):
        # includes evaluation-cap exhaustion and genuinely flaky input
        return ShrinkResult(
            original=campaign,
            shrunk=campaign,
            target_oracles=tuple(sorted(targets)),
            atoms_before=len(atoms),
            atoms_after=len(atoms),
            evaluations=evals,
            converged=False,
        )

    # -- ddmin proper --------------------------------------------------
    current = list(atoms)
    granularity = 2
    while len(current) >= 2 and not capped:
        chunks = _partition(current, granularity)
        reduced = False
        for chunk in chunks:
            if len(chunks) > 1 and still_fails(chunk):
                current = list(chunk)
                granularity = 2
                reduced = True
                break
            complement = [a for a in current if a not in set(chunk)]
            if complement and still_fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    # -- greedy 1-minimality pass --------------------------------------
    changed = True
    while changed and not capped:
        changed = False
        for atom in list(current):
            trial = [a for a in current if a != atom]
            if trial and still_fails(trial):
                current = trial
                changed = True
    if len(current) == 1 and not capped:
        # the empty campaign is a legal candidate too
        if still_fails([]):
            current = []

    return ShrinkResult(
        original=campaign,
        shrunk=rebuild_campaign(campaign, current),
        target_oracles=tuple(sorted(targets)),
        atoms_before=len(atoms),
        atoms_after=len(current),
        evaluations=evals,
        converged=not capped,
    )


def _partition(items: List[Atom], parts: int) -> List[List[Atom]]:
    """Split ``items`` into ``parts`` near-equal contiguous chunks."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks: List[List[Atom]] = []
    start = 0
    for i in range(parts):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return [c for c in chunks if c]
