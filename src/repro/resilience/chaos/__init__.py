"""Seeded chaos-fuzzing: searched fault campaigns with invariant oracles.

PRs 1–3 built a fault *vocabulary* — crash/recover schedules, link
churn, jam windows, adaptive jammers, payload corruption, Byzantine
insiders — but every scenario exercised so far was hand-written, so the
test surface was limited to the failure modes someone already imagined.
This package turns the vocabulary into a *search*:

- :mod:`repro.resilience.chaos.fuzzer` — a seeded schedule fuzzer that
  samples mixed campaigns (crashes, recoveries, link churn, jam windows,
  adversary knobs, Byzantine mode assignments) from declarative
  :class:`IntensityProfile`\\ s, always emitting schedules that pass
  :meth:`FaultSchedule.validate`;
- :mod:`repro.resilience.chaos.oracles` — invariant oracles run against
  every trial: safety (no mis-decode, no mis-attribution, every dropped
  reception accounted exactly once, the reception rule holds under
  faults *and churn*, the fault-layer event stream replays bit-for-bit,
  no phantom deliveries to departed nodes, queue bounds respected, the
  continuous books recompute exactly from the audit log) and liveness
  (honest-reachable delivery, round count within a configurable
  multiple of the paper's Theorem 2 bound, joiner catch-up within the
  repair envelope);
- :mod:`repro.resilience.chaos.runner` — a campaign runner executing N
  seeded trials across the supervised
  :mod:`repro.experiments.orchestrator` worker pool (checkpointed and
  resumable when given a directory; poisoned seeds are quarantined
  instead of sinking the campaign) and collecting violations;
- :mod:`repro.resilience.chaos.shrink` — a delta-debugging shrinker
  that minimizes a violating campaign to a locally minimal set of fault
  atoms, re-checking the violated oracle at every step;
- :mod:`repro.resilience.chaos.artifact` — replayable failure bundles
  (seed, topology spec, shrunk schedule, oracle verdicts) that
  ``repro chaos replay`` re-executes bit-for-bit.

Everything is seeded: the same (profile, topology, seed) triple always
produces the same campaign, the same execution, and the same verdicts,
which is what makes shrinking and artifact replay exact rather than
statistical.
"""

from repro.resilience.chaos.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactStream,
    ReplayReport,
    build_artifact,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.resilience.chaos.fuzzer import (
    ABLATIONS,
    PROFILES,
    ChaosCampaign,
    IntensityProfile,
    build_topology_spec,
    build_workload_spec,
    sample_campaign,
)
from repro.resilience.chaos.oracles import (
    ORACLES,
    OracleVerdict,
    run_oracles,
    violated,
)
from repro.resilience.chaos.runner import (
    CampaignConfig,
    CampaignReport,
    TrialExecution,
    campaign_spec,
    evaluate_campaign,
    execute_campaign,
    resume_campaign,
    run_campaign,
    run_fuzz_trial,
    wrap_churn,
)
from repro.resilience.chaos.shrink import (
    ShrinkResult,
    campaign_atoms,
    rebuild_campaign,
    shrink_campaign,
)

__all__ = [
    "ABLATIONS",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactStream",
    "CampaignConfig",
    "CampaignReport",
    "ChaosCampaign",
    "IntensityProfile",
    "ORACLES",
    "OracleVerdict",
    "PROFILES",
    "ReplayReport",
    "ShrinkResult",
    "TrialExecution",
    "build_artifact",
    "build_topology_spec",
    "build_workload_spec",
    "campaign_atoms",
    "campaign_spec",
    "evaluate_campaign",
    "execute_campaign",
    "load_artifact",
    "rebuild_campaign",
    "replay_artifact",
    "resume_campaign",
    "run_campaign",
    "run_fuzz_trial",
    "run_oracles",
    "sample_campaign",
    "shrink_campaign",
    "violated",
    "wrap_churn",
    "write_artifact",
]
