"""BFS-tree repair after crashes: re-parent orphaned subtrees.

When an interior node of the Stage-2 BFS tree dies, its whole subtree
loses the path to the root — Stage 3 unicasts along ``parent`` pointers
would silently dead-end.  The repair protocol is a short sequence of
Decay epochs (the same primitive the paper builds everything from):

- every *attached* node (alive, labeled, with an all-alive parent chain
  to the root) participates, announcing ``(id, distance)``;
- an *orphan* (alive but detached — its chain crosses a dead node, or it
  was never labeled, e.g. a node that recovered after Stage 2) that
  receives an announcement adopts the sender as its new parent and sets
  ``distance = sender's + 1``, joining the attached set for the next
  epoch.

Repaired distances remain parent-consistent (child = parent + 1) but are
no longer exact BFS distances — paths may lengthen around the dead
region.  That is all Stages 3-4 need: unicast routing follows ``parent``
and the dissemination pipeline only requires a layering in which every
non-root layer-``d`` node has a layer-``d-1`` neighbor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.primitives.decay import decay_slots, run_decay_epoch
from repro.radio.trace import RoundTrace


@dataclass
class TreeRepairResult:
    """Outcome of one repair pass.

    ``complete`` means every alive node ended attached; alive nodes whose
    entire neighborhood died can never reattach and are reported in
    ``unreachable``.
    """

    rounds: int
    epochs: int
    parent: List[int]
    distance: List[int]
    orphans_before: List[int]
    reattached: List[int]
    unreachable: List[int]
    complete: bool


def attached_set(
    parent: Sequence[int],
    distance: Sequence[int],
    root: int,
    is_alive: Callable[[int], bool],
) -> Set[int]:
    """Alive nodes whose parent chain reaches the root through alive,
    labeled nodes.  Empty when the root itself is dead."""
    n = len(parent)
    status = {}  # node -> bool, memoized
    if is_alive(root):
        status[root] = True

    for start in range(n):
        if start in status:
            continue
        chain = []
        v = start
        verdict = False
        while True:
            if v in status:
                verdict = status[v]
                break
            if not is_alive(v) or distance[v] < 0:
                verdict = False
                break
            if v == root:
                verdict = True
                break
            chain.append(v)
            p = parent[v]
            if p < 0 or p in chain or p == v:
                verdict = False
                break
            v = p
        for u in chain:
            status[u] = verdict
    return {v for v, ok in status.items() if ok and is_alive(v)}


def find_orphans(
    parent: Sequence[int],
    distance: Sequence[int],
    root: int,
    is_alive: Callable[[int], bool],
) -> List[int]:
    """Alive nodes currently detached from the root."""
    attached = attached_set(parent, distance, root, is_alive)
    return sorted(
        v for v in range(len(parent)) if is_alive(v) and v not in attached
    )


def default_repair_epochs(network, factor: float = 2.0) -> int:
    """Epoch budget for one repair pass: ``O(D + log n)`` Decay epochs —
    enough to flood announcements across any orphaned region w.h.p."""
    n = max(network.n, 2)
    return max(1, math.ceil(factor * (network.diameter + math.log2(n))))


def repair_tree(
    network,
    parent: Sequence[int],
    distance: Sequence[int],
    root: int,
    rng: np.random.Generator,
    epochs: Optional[int] = None,
    trace: Optional[RoundTrace] = None,
    round_offset: int = 0,
    exclude: frozenset = frozenset(),
    mute: frozenset = frozenset(),
) -> TreeRepairResult:
    """Re-parent orphaned subtrees via Decay announcement epochs.

    ``network`` is typically a
    :class:`repro.resilience.network.DynamicFaultNetwork` (its
    ``is_alive`` drives orphan detection; a plain network is treated as
    all-alive).  ``parent``/``distance`` are not mutated; repaired copies
    are returned in the result.

    ``exclude`` lists *convicted* insiders, treated as dead for the
    repair: they never announce, never adopt, and are not counted
    orphaned or unreachable.  ``mute`` lists *suspected* nodes, routed
    around but not convicted: a chain crossing one counts as broken (so
    their children re-parent elsewhere) and they never announce, but —
    being possibly honest — they may still adopt a new parent so their
    own packets keep a route to the root.  A mute node that hears no
    announcement keeps its old pointers.
    """
    n = network.n
    base_alive = getattr(network, "is_alive", lambda v: True)
    exclude = frozenset(exclude)
    mute = frozenset(mute)
    if exclude or mute:
        def is_alive(v, _base=base_alive, _bad=exclude | mute):
            return _base(v) and v not in _bad

        def adoptable(v, _base=base_alive, _ex=exclude):
            return _base(v) and v not in _ex
    else:
        is_alive = base_alive
        adoptable = base_alive
    if epochs is None:
        epochs = default_repair_epochs(network)

    new_parent = [int(p) for p in parent]
    new_distance = [int(d) for d in distance]
    attached = attached_set(new_parent, new_distance, root, is_alive)
    orphans_before = sorted(
        v for v in range(n) if adoptable(v) and v not in attached
    )
    orphans: Set[int] = set(orphans_before)

    num_slots = decay_slots(network.max_degree)
    rounds = 0
    epochs_run = 0
    reattached: List[int] = []

    def message_fn(node: int, slot: int) -> Tuple[int, int]:
        return (node, new_distance[node])

    while orphans and epochs_run < epochs:
        participants = sorted(attached)
        if not participants:
            break  # root dead or nothing attached: repair cannot start
        receptions = run_decay_epoch(
            network,
            participants,
            message_fn,
            rng,
            num_slots=num_slots,
            trace=trace,
            round_offset=round_offset + rounds,
        )
        rounds += num_slots
        epochs_run += 1
        for slot_received in receptions:
            for receiver, payload in slot_received.items():
                if receiver not in orphans:
                    continue
                if not (isinstance(payload, tuple) and len(payload) == 2):
                    continue  # stray traffic (e.g. a forged ACK)
                sender, sender_dist = payload
                if sender not in attached or not is_alive(sender):
                    continue  # stale announcement from a mid-epoch crash
                new_parent[receiver] = sender
                new_distance[receiver] = sender_dist + 1
                orphans.discard(receiver)
                if receiver not in mute:
                    # suspects re-adopt silently: they never announce,
                    # so nobody is routed *through* them
                    attached.add(receiver)
                reattached.append(receiver)

    unreachable = sorted(orphans)
    return TreeRepairResult(
        rounds=rounds,
        epochs=epochs_run,
        parent=new_parent,
        distance=new_distance,
        orphans_before=orphans_before,
        reattached=sorted(reattached),
        unreachable=unreachable,
        complete=not unreachable,
    )
