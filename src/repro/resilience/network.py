"""A schedule-driven fault layer over any radio network.

:class:`DynamicFaultNetwork` is a transparent proxy (like
:class:`repro.radio.transcript.RecordingNetwork`): it delegates the
collision rule to the wrapped network's own ``resolve_round`` — so graph,
SINR, and erasure semantics are all preserved — and applies the
:class:`repro.resilience.schedule.FaultSchedule` on top:

- a **crashed** node neither transmits nor receives until it recovers;
- a **down link** never delivers, but the transmission still propagates
  and contributes interference (the signal is in the air; the link is
  merely too degraded to decode);
- receptions at nodes inside an active **jam window** are dropped with
  the window's probability (seeded);
- an optional **active adversary** (:mod:`repro.resilience.adversary`)
  then senses the surviving round and jams or corrupts receptions —
  reactive/budgeted jamming removes them, the corruption channel
  delivers them with flipped bits for the integrity layer to catch.

Time is the clock: every ``resolve_round`` call advances it by one round,
and engines/supervisors that charge rounds without simulating them
(silent epochs, backoff waits) advance it explicitly with
:meth:`advance` / :meth:`advance_to`.  Within a stage whose engine skips
silent rounds the clock therefore lags the protocol's own accounting by
the skipped rounds; a supervisor re-aligns it at every stage boundary.
Event timing is exact at those boundaries and
deterministic everywhere.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.radio.rng import SeedLike, make_rng
from repro.radio.trace import RoundTrace
from repro.resilience.schedule import FaultEvent, FaultSchedule


class DynamicFaultNetwork:
    """Apply a round-indexed fault schedule through ``resolve_round``.

    Parameters
    ----------
    base:
        Any object with the :class:`repro.radio.network.RadioNetwork`
        interface.  Its ``resolve_round`` supplies the collision
        semantics; faults are layered strictly on top.
    schedule:
        The fault timeline.  Validated against ``base.n`` up front.
    seed:
        Seed for the probabilistic jamming drops.
    trace:
        Optional :class:`RoundTrace`; suppressed transmissions and
        receptions are reported to it via ``observe_faults``.
    adversary:
        Optional :class:`repro.resilience.adversary.Adversary` applied
        after the schedule's own drops.  It carries its own seeded RNG,
        so attaching one never perturbs the protocol's random stream.
    byzantine:
        Optional :class:`repro.resilience.byzantine.ByzantineSet` of
        insider nodes.  Their transmission-side deviations are applied
        *before* the base collision rule (lies are on the air and
        collide like any transmission); their reception-side swallowing
        is applied after the adversary (an insider that pretends not to
        hear still heard — the swallow is a protocol deviation, not a
        channel event).  Fully deterministic: attaching an (empty or
        inert) set never perturbs the protocol's random stream.
    """

    def __init__(
        self,
        base,
        schedule: Optional[FaultSchedule] = None,
        seed: SeedLike = None,
        trace: Optional[RoundTrace] = None,
        adversary=None,
        byzantine=None,
    ):
        self._base = base
        self.schedule = schedule or FaultSchedule()
        self.schedule.validate(
            base.n, byzantine=byzantine.nodes if byzantine else ()
        )
        self.trace = trace
        self.adversary = adversary
        self.byzantine = byzantine
        self._jam_rng = make_rng(seed)

        self.clock = 0
        self.dead: Set[int] = set()
        self.down_links: Set[FrozenSet[int]] = set()
        self._pending: List[FaultEvent] = self.schedule.concrete_events()
        self._symbolic: List[FaultEvent] = self.schedule.symbolic_events()

        # fault-exposure counters
        self.tx_suppressed = 0
        self.rx_suppressed_dead = 0
        self.rx_suppressed_link = 0
        self.rx_suppressed_jam = 0
        self.rx_jammed_adversary = 0
        self.rx_corrupted = 0
        self.rx_swallowed_byzantine = 0
        self.crash_count = 0
        self.recover_count = 0
        self.events_applied: List[Tuple[int, str, object]] = []

    # ------------------------------------------------------------------
    # Clock and event machinery
    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == "crash":
            if event.node not in self.dead:
                self.dead.add(event.node)
                self.crash_count += 1
        elif event.kind == "recover":
            if event.node in self.dead:
                self.dead.discard(event.node)
                self.recover_count += 1
        elif event.kind == "link_down":
            self.down_links.add(frozenset(event.edge))
        elif event.kind == "link_up":
            self.down_links.discard(frozenset(event.edge))
        self.events_applied.append(
            (self.clock, event.kind,
             event.node if event.edge is None else event.edge)
        )

    def _catch_up(self, limit: int) -> None:
        """Apply every pending concrete event with ``round <= limit``."""
        if not self._pending:
            return
        remaining: List[FaultEvent] = []
        for event in self._pending:
            if event.round <= limit:
                self._apply(event)
            else:
                remaining.append(event)
        self._pending = remaining

    def advance(self, rounds: int) -> None:
        """Let ``rounds`` silent/idle rounds elapse."""
        if rounds < 0:
            raise ValueError("cannot advance by a negative round count")
        self.advance_to(self.clock + rounds)

    def advance_to(self, round_index: int) -> None:
        """Jump the clock forward to ``round_index`` (no-op if behind).

        Propagated to the wrapped network when it keeps a clock of its
        own (a :class:`~repro.dynamic.churn.ChurnNetwork` underneath
        must see silent rounds elapse, or its topology timeline would
        lag the fault timeline by every skipped round).
        """
        if round_index <= self.clock:
            return
        self.clock = round_index
        self._catch_up(round_index - 1)
        base_advance_to = getattr(self._base, "advance_to", None)
        if base_advance_to is not None:
            base_advance_to(round_index)

    def materialize_stage(self, stage: str) -> List[FaultEvent]:
        """Pin this stage's symbolic events to the current round.

        Called by the supervisor when ``stage`` completes; the events
        are applied immediately (so liveness queries between stages see
        them) and are stamped with the current round.  Each symbolic
        event fires at most once — the *first* completion of its stage
        (a re-run after re-election does not re-fire it).  Returns the
        events that were materialized.
        """
        from dataclasses import replace

        fired = [
            replace(e, round=self.clock, after_stage=None)
            for e in self._symbolic
            if e.after_stage == stage
        ]
        if fired:
            for event in fired:
                self._apply(event)
            self._symbolic = [
                e for e in self._symbolic if e.after_stage != stage
            ]
        return fired

    # ------------------------------------------------------------------
    # Liveness queries
    # ------------------------------------------------------------------

    def is_alive(self, node: int) -> bool:
        """Alive = not crashed *and* present (when the wrapped network
        tracks membership, a departed node is as unusable as a dead
        one — the supervisor repairs around both the same way)."""
        if node in self.dead:
            return False
        base_present = getattr(self._base, "is_present", None)
        if base_present is not None and not base_present(node):
            return False
        return True

    def alive_nodes(self) -> List[int]:
        return [
            v for v in range(self._base.n) if self.is_alive(v)
        ]

    @property
    def crashed_nodes(self) -> FrozenSet[int]:
        return frozenset(self.dead)

    def fault_stats(self) -> Dict[str, int]:
        """Exposure counters for degradation reports."""
        stats = {
            "tx_suppressed": self.tx_suppressed,
            "rx_suppressed_dead": self.rx_suppressed_dead,
            "rx_suppressed_link": self.rx_suppressed_link,
            "rx_suppressed_jam": self.rx_suppressed_jam,
            "rx_jammed_adversary": self.rx_jammed_adversary,
            "rx_corrupted": self.rx_corrupted,
            "rx_swallowed_byzantine": self.rx_swallowed_byzantine,
            "crashes": self.crash_count,
            "recoveries": self.recover_count,
            "currently_dead": len(self.dead),
        }
        if self.adversary is not None:
            stats.update(self.adversary.stats())
        if self.byzantine is not None:
            stats.update(self.byzantine.stats())
        return stats

    # ------------------------------------------------------------------
    # The faulted reception rule
    # ------------------------------------------------------------------

    def resolve_round(self, transmissions: Mapping[int, object]) -> Dict[int, object]:
        self._catch_up(self.clock)
        round_index = self.clock
        self.clock += 1

        # Crashed transmitters fall silent.
        if self.dead:
            filtered = {
                tx: msg for tx, msg in transmissions.items()
                if tx not in self.dead
            }
            self.tx_suppressed += len(transmissions) - len(filtered)
        else:
            filtered = dict(transmissions)

        # Insider lies go on the air before the collision rule runs.
        if self.byzantine is not None:
            filtered = self.byzantine.transform_transmissions(
                round_index, filtered, self.dead.__contains__
            )

        received = self._base.resolve_round(filtered)

        surviving: Dict[int, object] = {}
        jams = [
            w for w in self.schedule.jam_windows if w.active(round_index)
        ]
        rx_dead = rx_link = rx_jam = 0
        for receiver, message in received.items():
            if receiver in self.dead:
                rx_dead += 1
                continue
            if self.down_links and self._link_blocked(receiver, filtered):
                rx_link += 1
                continue
            jammed = False
            for window in jams:
                if receiver in window.nodes:
                    if (window.prob >= 1.0
                            or self._jam_rng.random() < window.prob):
                        jammed = True
                        break
            if jammed:
                rx_jam += 1
                continue
            surviving[receiver] = message

        # The active adversary sees the post-crash transmissions (that is
        # what is on the air) and acts on the receptions that survived
        # the scheduled faults.  It runs even on reception-free rounds so
        # its budget/activity state tracks the real channel.
        rx_adv_jam = rx_corrupt = 0
        if self.adversary is not None:
            surviving, rx_adv_jam, rx_corrupt = self.adversary.attack(
                round_index, filtered, surviving
            )

        # Insiders pretending not to hear: a protocol deviation, counted
        # apart from every channel-level suppression bucket.
        rx_swallowed = 0
        if self.byzantine is not None:
            surviving, rx_swallowed = self.byzantine.consume_receptions(
                round_index, surviving, self.dead.__contains__
            )
        self.rx_swallowed_byzantine += rx_swallowed

        self.rx_suppressed_dead += rx_dead
        self.rx_suppressed_link += rx_link
        self.rx_suppressed_jam += rx_jam
        self.rx_jammed_adversary += rx_adv_jam
        self.rx_corrupted += rx_corrupt
        if self.trace is not None:
            self.trace.observe_faults(
                tx_suppressed=len(transmissions) - len(filtered),
                rx_suppressed=rx_dead + rx_link + rx_jam + rx_adv_jam,
                rx_corrupted=rx_corrupt,
            )
        return surviving

    def _link_blocked(self, receiver: int, transmissions: Mapping[int, object]) -> bool:
        """True when every transmitting neighbor of ``receiver`` sits on
        a downed link to it (so the decoded message cannot have arrived).

        The wrapped model delivers at most one message per receiver per
        round; under the graph rule the sender is the unique transmitting
        neighbor, so "all candidate senders blocked" is exact.  Under
        SINR it is conservative in the rare multi-neighbor case.
        """
        candidates = [
            tx for tx in transmissions
            if self._base.has_edge(tx, receiver)
        ]
        if not candidates:
            return False
        return all(
            frozenset((tx, receiver)) in self.down_links
            for tx in candidates
        )

    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        if name == "_base":  # guard against recursion during unpickling
            raise AttributeError(name)
        return getattr(self._base, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicFaultNetwork({self._base!r}, events="
            f"{len(self.schedule.events)}, clock={self.clock}, "
            f"dead={sorted(self.dead)})"
        )
