"""Byzantine behavior models: insiders that lie instead of failing.

PR 1 modeled nodes that *stop* (crashes) and PR 2 a channel that
*mangles* (jamming, bit flips).  This module models nodes that keep
running the protocol while deviating from it — the insider threat the
paper's trusting-nodes model excludes entirely.  A :class:`ByzantineSet`
assigns one behavior mode to a set of nodes and is applied by
:class:`repro.resilience.network.DynamicFaultNetwork` at the
transmission/reception boundary, so honest protocol code never needs to
know who is lying:

- ``id_inflation`` — claim an out-of-range ID during leader election;
  once (wrongly) elected, black-hole every collection unicast;
- ``ack_forge`` — swallow packets addressed to self and transmit forged
  ACKs so origins believe the packet was collected;
- ``ack_withhold`` — swallow packets *and* ACKs addressed to self: a
  silent black hole on the collection tree;
- ``bfs_misreport`` — announce a BFS layer two smaller than the true
  one, corrupting the distances of every adopter;
- ``row_poison`` — flip a payload bit in own coded/plain FORWARD
  transmissions and recompute the *shared* checksum (the insider knows
  the key), producing checksum-valid poison.

Every behavior is a deterministic function of the observed traffic — no
RNG is drawn — so attaching a ``ByzantineSet`` never perturbs the
protocol's seeded random stream, and a run with an empty set is
bit-identical to the fault-free execution.

The countermeasures live elsewhere: per-node authentication in
:mod:`repro.coding.integrity`, receiver-side verification in the
collection and dissemination stages, and quorum auditing in
:mod:`repro.resilience.supervisor`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.coding.integrity import (
    DEFAULT_AUTH_MASTER_KEY,
    DEFAULT_INTEGRITY_KEY,
    ack_root_tag,
    coded_hop_tag,
    collection_hop_tag,
    packet_checksum,
    plain_hop_tag,
)
from repro.radio.rng import SeedLike, make_rng

#: The supported behavior modes, in documentation order.
BYZANTINE_MODES = (
    "id_inflation",
    "ack_forge",
    "ack_withhold",
    "bfs_misreport",
    "row_poison",
)

#: A forged ACK scheduled for round ``due`` is transmitted at the first
#: opportunity within ``due + _FORGE_EXPIRY`` rounds and dropped after —
#: keeping the forgery inside the collection window instead of leaking
#: stray ACK tuples into later stages.
_FORGE_EXPIRY = 40

#: Retransmission offsets for forged ACKs, mirroring the exponential
#: spacing an honest root uses so at least one copy tends to find a
#: collision-free slot.
_FORGE_OFFSETS = (1, 3, 9, 27)


class ByzantineSet:
    """A set of insider nodes sharing one behavior mode.

    Parameters
    ----------
    nodes:
        The misbehaving nodes.
    mode:
        One of :data:`BYZANTINE_MODES`.
    integrity_key / auth_master_key / authentication:
        The protocol's integrity configuration — insiders are full
        protocol participants, so they know the shared checksum key and
        their *own* derived signing key (and nothing else).  Synced from
        :class:`repro.core.config.AlgorithmParameters` via
        :meth:`configure` when attached to a supervised run.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        mode: str,
        integrity_key: int = DEFAULT_INTEGRITY_KEY,
        auth_master_key: int = DEFAULT_AUTH_MASTER_KEY,
        authentication: bool = False,
    ):
        if mode not in BYZANTINE_MODES:
            raise ValueError(
                f"unknown Byzantine mode {mode!r}; "
                f"expected one of {BYZANTINE_MODES}"
            )
        self.nodes = frozenset(nodes)
        self.mode = mode
        self.integrity_key = integrity_key
        self.auth_master_key = auth_master_key
        self.authentication = authentication
        self._leader: Optional[int] = None
        # (due_round, forger, message) — forged ACKs awaiting a slot
        self._forge_queue: List[Tuple[int, int, tuple]] = []

        # exposure counters
        self.rx_swallowed = 0
        self.acks_forged = 0
        self.forged_acks_injected = 0
        self.rows_poisoned = 0
        self.bfs_misreports = 0
        self.claims_forged = 0

    def configure(self, integrity_key: int, auth_master_key: int,
                  authentication: bool) -> None:
        """Sync the insiders' knowledge with the run's parameters."""
        self.integrity_key = integrity_key
        self.auth_master_key = auth_master_key
        self.authentication = authentication

    def notice_leader(self, leader: Optional[int]) -> None:
        """Told by the supervisor who currently leads; the id-inflation
        black-hole only activates when an insider holds the lead."""
        self._leader = leader

    # ------------------------------------------------------------------
    # Election-time forgery
    # ------------------------------------------------------------------

    def election_claims(
        self, id_bound: int, is_alive: Callable[[int], bool]
    ) -> List[Tuple[int, int]]:
        """Forged leadership claims: ``(claimant, claimed_id)`` pairs.

        Under ``id_inflation`` every live insider claims an ID above the
        legal bound (distinct per claimant so the forgeries do not
        cancel each other).  Other modes never forge claims.
        """
        if self.mode != "id_inflation":
            return []
        claims = [
            (v, id_bound + 1 + i)
            for i, v in enumerate(sorted(self.nodes))
            if is_alive(v)
        ]
        self.claims_forged += len(claims)
        return claims

    # ------------------------------------------------------------------
    # Transmission-side deviation
    # ------------------------------------------------------------------

    def _poison(self, v: int, msg: tuple) -> Optional[tuple]:
        """Rewrite one of ``v``'s FORWARD transmissions, if applicable."""
        kind = msg[0] if msg else None
        if kind == "coded" and len(msg) in (5, 6, 8):
            j, mask, xor, gs = msg[1], msg[2], msg[3], msg[4]
            xor ^= 1
            chk = msg[5] if len(msg) > 5 else None
            if chk is not None:
                # the insider knows the shared key: checksum-valid poison
                chk = packet_checksum(j, mask, xor, gs, self.integrity_key)
            if len(msg) == 8:
                htag = coded_hop_tag(v, j, mask, xor, gs,
                                     -1 if chk is None else chk,
                                     self.auth_master_key)
                return ("coded", j, mask, xor, gs, chk, v, htag)
            if len(msg) == 6:
                return ("coded", j, mask, xor, gs, chk)
            return ("coded", j, mask, xor, gs)
        if kind == "plain" and len(msg) in (5, 6, 9):
            j, idx, payload, gs = msg[1], msg[2], msg[3], msg[4]
            payload ^= 1
            chk = msg[5] if len(msg) > 5 else None
            if chk is not None:
                chk = packet_checksum(j, 1 << idx, payload, gs,
                                      self.integrity_key)
            if len(msg) == 9:
                # cannot re-sign the root tag — carry the stale one and
                # let the receiver's root-tag check attribute the poison
                rtag = msg[6]
                htag = plain_hop_tag(v, j, idx, payload, gs,
                                     -1 if chk is None else chk, rtag,
                                     self.auth_master_key)
                return ("plain", j, idx, payload, gs, chk, rtag, v, htag)
            if len(msg) == 6:
                return ("plain", j, idx, payload, gs, chk)
            return ("plain", j, idx, payload, gs)
        return None

    def transform_transmissions(
        self,
        round_index: int,
        transmissions: Dict[int, object],
        is_dead: Callable[[int], bool],
    ) -> Dict[int, object]:
        """Apply transmission-side deviations for round ``round_index``.

        Called by ``DynamicFaultNetwork.resolve_round`` after crashed
        transmitters are silenced and before the base collision rule
        runs — forged/rewritten transmissions collide like any others.
        """
        out = transmissions
        if self.mode == "row_poison":
            for v in self.nodes:
                msg = transmissions.get(v)
                if msg is None or not isinstance(msg, tuple):
                    continue
                poisoned = self._poison(v, msg)
                if poisoned is not None:
                    if out is transmissions:
                        out = dict(transmissions)
                    out[v] = poisoned
                    self.rows_poisoned += 1
        elif self.mode == "bfs_misreport":
            for v in self.nodes:
                msg = transmissions.get(v)
                if (isinstance(msg, tuple) and len(msg) == 2
                        and msg[0] == v and isinstance(msg[1], int)
                        and msg[1] > 0):
                    if out is transmissions:
                        out = dict(transmissions)
                    out[v] = (v, max(0, msg[1] - 2))
                    self.bfs_misreports += 1
        elif self.mode == "ack_forge" and self._forge_queue:
            remaining: List[Tuple[int, int, tuple]] = []
            injected = set()
            for due, v, msg in self._forge_queue:
                if round_index > due + _FORGE_EXPIRY:
                    continue  # expired unheard
                if (round_index >= due and v not in injected
                        and not is_dead(v)
                        and v not in transmissions and v not in out):
                    if out is transmissions:
                        out = dict(transmissions)
                    out[v] = msg
                    injected.add(v)
                    self.forged_acks_injected += 1
                else:
                    remaining.append((due, v, msg))
            self._forge_queue = remaining
        return out

    # ------------------------------------------------------------------
    # Reception-side deviation
    # ------------------------------------------------------------------

    def _forge_ack(self, v: int, pkt: tuple) -> tuple:
        """Build the forged ACK for a swallowed packet reception.

        The forger signs the *root* tag with its own key — the best an
        insider can do without the root's key — so under authentication
        the tag verifies as nobody's ACK and the forgery is attributed;
        without authentication the ACK is indistinguishable on the wire.
        """
        pid, holder = pkt[1], pkt[3]
        if self.authentication:
            fake_rtag = ack_root_tag(v, pid, self.auth_master_key)
            htag = collection_hop_tag(v, "ack", pid, holder, fake_rtag,
                                      self.auth_master_key)
            return ("ack", pid, holder, v, fake_rtag, htag)
        return ("ack", pid, holder, v)

    def consume_receptions(
        self,
        round_index: int,
        received: Dict[int, object],
        is_dead: Callable[[int], bool],
    ) -> Tuple[Dict[int, object], int]:
        """Swallow receptions an insider pretends not to have heard.

        Returns the surviving reception map and the number swallowed.
        Only collection unicasts addressed *to* the insider are eligible
        (``msg[2] == receiver``); overheard traffic passes through so
        the insider stays indistinguishable to its neighbors' counters.
        """
        if self.mode not in ("ack_forge", "ack_withhold", "id_inflation"):
            return received, 0
        swallowed = 0
        out = received
        for v in self.nodes:
            msg = received.get(v)
            if not (isinstance(msg, tuple) and len(msg) >= 4
                    and msg[0] in ("pkt", "ack") and msg[2] == v):
                continue
            if self.mode == "id_inflation":
                # black-hole only while the insider holds the lead
                if self._leader != v or msg[0] != "pkt":
                    continue
            elif self.mode == "ack_forge":
                if msg[0] != "pkt":
                    continue
                forged = self._forge_ack(v, msg)
                for offset in _FORGE_OFFSETS:
                    self._forge_queue.append(
                        (round_index + offset, v, forged)
                    )
                self.acks_forged += 1
            # ack_withhold swallows both kinds unconditionally
            if out is received:
                out = dict(received)
            del out[v]
            swallowed += 1
        self.rx_swallowed += swallowed
        return out, swallowed

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Exposure counters, merged into the network's fault stats."""
        return {
            "byzantine_nodes": len(self.nodes),
            "rx_swallowed_byzantine": self.rx_swallowed,
            "acks_forged": self.acks_forged,
            "forged_acks_injected": self.forged_acks_injected,
            "rows_poisoned": self.rows_poisoned,
            "bfs_misreports": self.bfs_misreports,
            "claims_forged": self.claims_forged,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ByzantineSet(nodes={sorted(self.nodes)}, mode={self.mode!r})"
        )


def random_byzantine_set(
    n: int,
    fraction: float,
    mode: str,
    seed: SeedLike = None,
    exclude: Iterable[int] = (),
) -> Optional[ByzantineSet]:
    """Assign ``mode`` to a random ``fraction`` of the eligible nodes.

    Mirrors :func:`repro.resilience.schedule.random_crash_schedule`:
    ``count = floor(fraction · |eligible|)``, drawn with a dedicated
    seeded RNG so the protocol's stream is untouched.  Returns ``None``
    when the count rounds down to zero (no insiders — callers can skip
    attaching the set entirely, keeping the run bit-identical to the
    fault-free execution).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    excluded = frozenset(exclude)
    eligible = [v for v in range(n) if v not in excluded]
    count = int(fraction * len(eligible))
    if count <= 0:
        return None
    rng = make_rng(seed)
    chosen = rng.choice(len(eligible), size=count, replace=False)
    nodes = [eligible[int(i)] for i in chosen]
    return ByzantineSet(nodes, mode)
