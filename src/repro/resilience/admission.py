"""Authenticated join admission and persistent identity quarantine.

Topology churn opens an insider surface the one-shot threat model never
had: membership itself becomes a protocol message.  A Byzantine node
can present a **Sybil** identity when it joins (claim to be someone
whose signing key it does not hold), **replay** a stale join credential
recorded from an earlier round, forge its **catch-up claim** (pretend
it has been a member since round 0 so the leader re-serves the full
history), or attempt **identity laundering** — leave after being
blacklisted and re-join hoping the conviction was tied to the session
rather than the identity.

This module supplies the countermeasures, built on the PR-3
authentication layer (:mod:`repro.coding.integrity`):

- :func:`join_admission_tag` — a keyed credential binding *(identity,
  join round)* under the identity's derived signing key.  A Sybil
  forger cannot mint it for an identity whose key it lacks, and the
  round binding makes every credential single-use (a replay presents a
  tag whose bound round is not the current one).
- :class:`AdmissionController` — verifies join requests in a fixed
  order (signature → freshness → quarantine → catch-up claim) and
  keeps a JSON-able admission log plus per-reason counters.
- :class:`QuarantineRegistry` — the persistent per-*identity*
  conviction store.  Convictions survive leave/re-join by design; the
  ``forgetful`` flag is the planted-bug switch for the chaos
  self-test (the ``amnesiac_blacklist`` ablation): a forgetful registry
  erases a conviction when the convict departs, exactly the laundering
  hole the ``no_blacklist_escape`` oracle exists to catch.  Never set
  it outside tests.

Everything here is a deterministic function of its inputs — no RNG is
ever drawn, so wiring admission into a seeded run never perturbs the
protocol's random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.coding.integrity import (
    DEFAULT_AUTH_MASTER_KEY,
    auth_tag,
    verify_auth_tag,
)

#: ``catch_up_since`` value meaning "never present before this join".
NEVER_PRESENT = -1

#: Insider join-attack repertoire, in documentation order.  The attack
#: a given insider mounts is a deterministic function of its id
#: (:func:`insider_join_attack`), so runs stay seed-reproducible.
JOIN_ATTACKS = ("sybil", "replay", "catchup_forge")

#: Admission verdict reasons.
ADMISSION_REASONS = (
    "ok", "sybil", "replay", "quarantined", "catchup_forged",
)


def join_admission_tag(
    node: int, join_round: int, master: int = DEFAULT_AUTH_MASTER_KEY
) -> int:
    """Keyed join credential for ``node`` joining at ``join_round``.

    Signed under the node's *derived* key, so only the identity's
    legitimate holder can mint it; the round binding makes it
    single-use.
    """
    return auth_tag(node, ("j5", join_round), master)


def insider_join_attack(node: int) -> str:
    """The join attack insider ``node`` mounts (deterministic)."""
    return JOIN_ATTACKS[node % len(JOIN_ATTACKS)]


@dataclass(frozen=True)
class JoinRequest:
    """One join attempt as seen by the admission gate.

    ``claimed_id`` is the identity the joiner asserts; ``tag`` is the
    credential it presents; ``tag_round`` is the round the credential
    claims to be minted for; ``catch_up_since`` is the round the joiner
    claims it last departed (:data:`NEVER_PRESENT` for a first join) —
    the basis of its catch-up entitlement.
    """

    claimed_id: int
    join_round: int
    tag: int
    tag_round: int
    catch_up_since: int = NEVER_PRESENT

    @classmethod
    def honest(
        cls,
        node: int,
        join_round: int,
        last_departed: int = NEVER_PRESENT,
        master: int = DEFAULT_AUTH_MASTER_KEY,
    ) -> "JoinRequest":
        """A well-formed request from the identity's rightful holder."""
        return cls(
            claimed_id=int(node),
            join_round=int(join_round),
            tag=join_admission_tag(node, join_round, master),
            tag_round=int(join_round),
            catch_up_since=int(last_departed),
        )

    @classmethod
    def forged(
        cls,
        node: int,
        join_round: int,
        attack: str,
        last_departed: int = NEVER_PRESENT,
        master: int = DEFAULT_AUTH_MASTER_KEY,
    ) -> "JoinRequest":
        """The request insider ``node`` presents under ``attack``.

        - ``sybil``: claim a *different* identity, signing with the
          insider's own key (the best it can do without the victim's
          key) — the tag never verifies for the claimed identity;
        - ``replay``: present the insider's own credential minted for
          an earlier round (stale ``tag_round``);
        - ``catchup_forge``: a perfectly valid credential, but claim
          membership since round 0 to extort a full-history catch-up.
        """
        if attack == "sybil":
            victim = int(node) + 1  # an identity whose key it lacks
            return cls(
                claimed_id=victim,
                join_round=int(join_round),
                # signed with the forger's key, not the victim's
                tag=auth_tag(node, ("j5", int(join_round)), master),
                tag_round=int(join_round),
                catch_up_since=int(last_departed),
            )
        if attack == "replay":
            stale = max(0, int(join_round) - 7)
            return cls(
                claimed_id=int(node),
                join_round=int(join_round),
                tag=join_admission_tag(node, stale, master),
                tag_round=stale,
                catch_up_since=int(last_departed),
            )
        if attack == "catchup_forge":
            return cls(
                claimed_id=int(node),
                join_round=int(join_round),
                tag=join_admission_tag(node, join_round, master),
                tag_round=int(join_round),
                catch_up_since=0,  # "member since the beginning"
            )
        raise ValueError(
            f"unknown join attack {attack!r}; expected one of {JOIN_ATTACKS}"
        )


@dataclass(frozen=True)
class AdmissionRecord:
    """One admission decision, JSON-able for results and oracles."""

    round: int
    claimed_id: int
    admitted: bool
    reason: str

    def to_json(self) -> dict:
        return {
            "round": self.round,
            "claimed_id": self.claimed_id,
            "admitted": self.admitted,
            "reason": self.reason,
        }

    @classmethod
    def from_json(cls, data: dict) -> "AdmissionRecord":
        return cls(
            round=int(data["round"]),
            claimed_id=int(data["claimed_id"]),
            admitted=bool(data["admitted"]),
            reason=str(data["reason"]),
        )


class QuarantineRegistry:
    """Persistent per-identity conviction store.

    A conviction binds to the *identity*, not the session: leaving and
    re-joining does not clear it (the admission gate consults the
    registry on every join).  ``carried`` seeds convictions from
    earlier runs — the cross-run persistence a campaign's
    ``quarantined`` field models.

    ``forgetful`` is the planted-bug switch (``amnesiac_blacklist``):
    a forgetful registry erases the conviction when the convict
    departs, so a convicted insider launders its identity by simply
    re-joining.  Test-only.
    """

    def __init__(
        self, carried: Iterable[int] = (), forgetful: bool = False
    ):
        self.carried: FrozenSet[int] = frozenset(int(v) for v in carried)
        self.forgetful = bool(forgetful)
        self._active = set(self.carried)
        #: (kind, node, round, reason) — kind is carry/convict/forget
        self.history: List[Tuple[str, int, int, str]] = [
            ("carry", v, 0, "carried conviction") for v in sorted(self.carried)
        ]
        #: run-time convictions as (node, round, reason)
        self.convictions: List[Tuple[int, int, str]] = []

    def convict(self, node: int, round_index: int, reason: str) -> bool:
        """Record a conviction; True when it is fresh."""
        node = int(node)
        if node in self._active:
            return False
        self._active.add(node)
        self.convictions.append((node, int(round_index), reason))
        self.history.append(("convict", node, int(round_index), reason))
        return True

    def on_leave(self, node: int, round_index: int) -> None:
        """Told that ``node`` departed.  A correct registry ignores
        this; the forgetful one erases the conviction (the bug)."""
        if self.forgetful and node in self._active:
            self._active.discard(node)
            self.history.append(
                ("forget", int(node), int(round_index),
                 "forgetful registry dropped conviction on leave")
            )

    def is_quarantined(self, node: int) -> bool:
        return node in self._active

    @property
    def active(self) -> FrozenSet[int]:
        """Identities currently barred from the protocol."""
        return frozenset(self._active)

    @property
    def convicted_ever(self) -> FrozenSet[int]:
        """Every identity ever convicted (carried or run-time) —
        what the persistence invariant quantifies over."""
        return self.carried | frozenset(v for v, _, _ in self.convictions)

    def history_json(self) -> List[dict]:
        return [
            {"kind": k, "node": v, "round": r, "reason": why}
            for k, v, r, why in self.history
        ]


class AdmissionController:
    """The authenticated join gate.

    Checks run in a fixed order so every rejection carries its most
    specific cause: signature (Sybil), freshness (replay), quarantine
    (laundering), then the catch-up claim against the controller's own
    observed membership timeline (forged entitlement).
    """

    def __init__(
        self,
        registry: QuarantineRegistry,
        master: int = DEFAULT_AUTH_MASTER_KEY,
    ):
        self.registry = registry
        self.master = master
        self.log: List[AdmissionRecord] = []
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "rejected_sybil": 0,
            "rejected_replay": 0,
            "rejected_quarantined": 0,
            "rejected_catchup_forged": 0,
        }

    def review(
        self,
        request: JoinRequest,
        now: int,
        expected_since: int,
    ) -> AdmissionRecord:
        """Judge one join request at round ``now``.

        ``expected_since`` is the departure round the controller itself
        observed for the claimed identity (:data:`NEVER_PRESENT` for a
        first join) — the ground truth the catch-up claim is checked
        against.
        """
        reason = "ok"
        if not verify_auth_tag(
            request.tag,
            request.claimed_id,
            ("j5", request.tag_round),
            self.master,
        ):
            reason = "sybil"
        elif request.tag_round != now:
            reason = "replay"
        elif self.registry.is_quarantined(request.claimed_id):
            reason = "quarantined"
        elif request.catch_up_since != expected_since:
            reason = "catchup_forged"
        record = AdmissionRecord(
            round=int(now),
            claimed_id=int(request.claimed_id),
            admitted=(reason == "ok"),
            reason=reason,
        )
        self.log.append(record)
        if record.admitted:
            self.counters["admitted"] += 1
        else:
            self.counters[f"rejected_{reason}"] += 1
        return record

    def log_json(self) -> List[dict]:
        return [rec.to_json() for rec in self.log]
