"""Active adversary models: reactive jamming, budgeted jamming, corruption.

PR 1's fault schedules jam *obliviously* — windows fixed before the run.
The throughput-bound and dynamic-network lines of related work treat the
adversary as *adaptive*: it senses the channel and reacts to what the
protocol does.  This module provides such adversaries as small state
machines applied by :class:`repro.resilience.network.DynamicFaultNetwork`
on top of the wrapped network's own collision semantics:

- :class:`ReactiveJammer` — senses transmissions each round; whenever at
  least ``sense_threshold`` nodes are on the air it jams each reception
  independently with probability ``prob``;
- :class:`BudgetedJammer` — a ``t``-bounded adversary with a finite
  budget of jammed rounds, spent adaptively on the *busiest* rounds (an
  exponentially-weighted activity estimate decides what counts as busy,
  so it naturally concentrates on the layers with the most traffic);
- :class:`CorruptionChannel` — instead of erasing receptions, flips bits
  in the coefficient vectors / payloads of Stage-4 wire messages (plain
  or coded); control traffic of other stages passes through untouched.
  Checksum tags are *not* rewritten — the adversary does not know the
  integrity key, which is exactly the threat model of
  :mod:`repro.coding.integrity`;
- :class:`AdversaryStack` — composes several adversaries in order
  (e.g. a reactive jammer plus a corruption channel).

Every adversary draws from its own seeded RNG, so adversarial runs are
exactly reproducible and — crucially — never perturb the protocol's RNG
stream: with the adversary disabled, a supervised run is bit-identical
to the fault-free one.

The contract is one method::

    surviving, jammed, corrupted = adversary.attack(round_index,
                                                    transmissions,
                                                    received)

called once per resolved round (also when ``received`` is empty, so
budget/activity state advances with the channel).  ``jammed`` receptions
are removed from ``surviving``; ``corrupted`` ones are delivered with
altered bits.  The two sets are disjoint: every touched reception is
accounted for exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.radio.rng import SeedLike, make_rng

#: Wire-format kinds of the dissemination stage (see
#: :mod:`repro.core.dissemination`): ``(kind, group, mask_or_idx,
#: payload, group_size[, checksum])``.
_STAGE4_KINDS = ("plain", "coded")


class Adversary:
    """Base class: a pass-through adversary."""

    name = "null"

    def reset(self) -> None:
        """Forget all per-run state (budgets, activity estimates)."""

    def attack(
        self,
        round_index: int,
        transmissions: Mapping[int, object],
        received: Dict[int, object],
    ) -> Tuple[Dict[int, object], int, int]:
        """Return ``(surviving, jammed, corrupted)`` for this round."""
        return received, 0, 0

    def stats(self) -> Dict[str, int]:
        return {}


class ReactiveJammer(Adversary):
    """Jam with probability ``prob`` whenever the channel is sensed busy.

    Parameters
    ----------
    prob:
        Per-reception jam probability while the jammer is triggered.
    sense_threshold:
        Minimum number of concurrent transmitters that triggers the
        jammer (1 = reacts to any transmission; higher models a sensor
        that only hears aggregate energy).
    seed:
        Seed for the jam coin flips (independent of the protocol RNG).
    """

    name = "reactive"

    def __init__(self, prob: float, sense_threshold: int = 1,
                 seed: SeedLike = None):
        if not 0.0 <= prob <= 1.0:
            raise ValueError("jam probability must be in [0, 1]")
        if sense_threshold < 1:
            raise ValueError("sense_threshold must be >= 1")
        self.prob = float(prob)
        self.sense_threshold = int(sense_threshold)
        self._seed = seed
        self._rng = make_rng(seed)
        self.rounds_triggered = 0
        self.receptions_jammed = 0

    def reset(self) -> None:
        self._rng = make_rng(self._seed)
        self.rounds_triggered = 0
        self.receptions_jammed = 0

    def attack(self, round_index, transmissions, received):
        if self.prob <= 0.0 or len(transmissions) < self.sense_threshold:
            return received, 0, 0
        self.rounds_triggered += 1
        if not received:
            return received, 0, 0
        surviving: Dict[int, object] = {}
        jammed = 0
        for receiver in sorted(received):
            if self._rng.random() < self.prob:
                jammed += 1
            else:
                surviving[receiver] = received[receiver]
        self.receptions_jammed += jammed
        return surviving, jammed, 0

    def stats(self) -> Dict[str, int]:
        return {
            "reactive_rounds_triggered": self.rounds_triggered,
            "reactive_receptions_jammed": self.receptions_jammed,
        }


class BudgetedJammer(Adversary):
    """A ``t``-bounded jammer: at most ``budget`` fully-jammed rounds.

    Spends the budget adaptively: it tracks an exponentially-weighted
    moving average of channel activity and jams a round (erasing *every*
    reception) only when the current transmitter count is at least the
    larger of ``min_transmitters`` and the moving average — i.e. the
    busiest rounds it has seen, which under the pipeline are the layers
    carrying the most concurrent groups.

    Deterministic: the same execution always burns the budget on the
    same rounds.
    """

    name = "budgeted"

    def __init__(self, budget: int, min_transmitters: int = 2,
                 ewma_alpha: float = 0.1, seed: SeedLike = None):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if min_transmitters < 1:
            raise ValueError("min_transmitters must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.budget = int(budget)
        self.min_transmitters = int(min_transmitters)
        self.ewma_alpha = float(ewma_alpha)
        self.remaining = int(budget)
        self._activity = 0.0
        self.rounds_jammed = 0
        self.receptions_jammed = 0

    def reset(self) -> None:
        self.remaining = self.budget
        self._activity = 0.0
        self.rounds_jammed = 0
        self.receptions_jammed = 0

    def attack(self, round_index, transmissions, received):
        count = len(transmissions)
        threshold = max(float(self.min_transmitters), self._activity)
        jam = (self.remaining > 0 and count >= threshold and count > 0)
        self._activity += self.ewma_alpha * (count - self._activity)
        if not jam:
            return received, 0, 0
        self.remaining -= 1
        self.rounds_jammed += 1
        jammed = len(received)
        self.receptions_jammed += jammed
        return {}, jammed, 0

    def stats(self) -> Dict[str, int]:
        return {
            "budget_rounds_jammed": self.rounds_jammed,
            "budget_receptions_jammed": self.receptions_jammed,
            "budget_remaining": self.remaining,
        }


class CorruptionChannel(Adversary):
    """Flip bits in Stage-4 payloads / coefficient vectors.

    Each delivered reception carrying a recognized dissemination wire
    message is corrupted independently with probability ``rate``: one
    uniformly chosen bit of either the coefficient vector (the subset
    mask / packet index header) or the payload is flipped.  The
    checksum field, when present, is carried through unmodified — the
    adversary cannot forge tags without the integrity key.

    Messages of other stages (election probes, BFS tokens, collection
    control traffic) pass through untouched; this adversary targets the
    coding layer specifically.
    """

    name = "corruption"

    def __init__(self, rate: float, seed: SeedLike = None,
                 payload_bits: int = 16):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("corruption rate must be in [0, 1]")
        if payload_bits < 1:
            raise ValueError("payload_bits must be >= 1")
        self.rate = float(rate)
        self.payload_bits = int(payload_bits)
        self._seed = seed
        self._rng = make_rng(seed)
        self.receptions_corrupted = 0

    def reset(self) -> None:
        self._rng = make_rng(self._seed)
        self.receptions_corrupted = 0

    # -- wire-format surgery -------------------------------------------

    def _corrupt_message(self, msg: Tuple) -> Tuple:
        kind = msg[0]
        parts: List[object] = list(msg)
        if kind == "coded":
            _, _, mask, payload, gs = msg[:5]
            # flip a coefficient bit or a payload bit, uniformly over
            # the combined width
            pbits = max(self.payload_bits, max(1, int(payload).bit_length()))
            pos = int(self._rng.integers(0, gs + pbits))
            if pos < gs:
                parts[2] = int(mask) ^ (1 << pos)
            else:
                parts[3] = int(payload) ^ (1 << (pos - gs))
        else:  # plain
            _, _, idx, payload, gs = msg[:5]
            pbits = max(self.payload_bits, max(1, int(payload).bit_length()))
            pos = int(self._rng.integers(0, gs + pbits))
            if pos < gs:
                # corrupt the index header: the receiver files the
                # payload under the wrong packet slot
                idx_bits = max(1, (gs - 1).bit_length())
                parts[2] = int(idx) ^ (1 << (pos % idx_bits))
            else:
                parts[3] = int(payload) ^ (1 << (pos - gs))
        return tuple(parts)

    def attack(self, round_index, transmissions, received):
        if self.rate <= 0.0 or not received:
            return received, 0, 0
        surviving: Dict[int, object] = {}
        corrupted = 0
        for receiver in sorted(received):
            msg = received[receiver]
            eligible = (
                isinstance(msg, tuple) and len(msg) >= 5
                and msg[0] in _STAGE4_KINDS
            )
            if eligible and self._rng.random() < self.rate:
                surviving[receiver] = self._corrupt_message(msg)
                corrupted += 1
            else:
                surviving[receiver] = msg
        self.receptions_corrupted += corrupted
        return surviving, 0, corrupted

    def stats(self) -> Dict[str, int]:
        return {"receptions_corrupted": self.receptions_corrupted}


class AdversaryStack(Adversary):
    """Apply several adversaries in order (jam first, then corrupt)."""

    name = "stack"

    def __init__(self, adversaries: List[Adversary]):
        self.adversaries = list(adversaries)

    def reset(self) -> None:
        for adversary in self.adversaries:
            adversary.reset()

    def attack(self, round_index, transmissions, received):
        jammed_total = 0
        corrupted_total = 0
        for adversary in self.adversaries:
            received, jammed, corrupted = adversary.attack(
                round_index, transmissions, received
            )
            jammed_total += jammed
            corrupted_total += corrupted
        return received, jammed_total, corrupted_total

    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for adversary in self.adversaries:
            out.update(adversary.stats())
        return out
