"""Round-indexed fault schedules: crash, recover, link outages, jamming.

A :class:`FaultSchedule` is a declarative description of *when* faults
happen, decoupled from *how* they are applied (that is
:class:`repro.resilience.network.DynamicFaultNetwork`'s job).  Events are
indexed by the global round counter, so the same schedule replays
identically across runs — fault injection is as seeded and reproducible
as everything else in the library.

Two kinds of timing are supported:

- **concrete** — the event fires at an absolute round index;
- **symbolic** — the event fires when a named protocol stage completes
  (``after_stage="bfs"``).  Symbolic events are resolved to concrete
  rounds by :class:`repro.resilience.supervisor.SupervisedBroadcast`,
  which knows where the stage boundaries fall; engines that never call
  ``materialize_stage`` simply never fire them.

Jamming is modeled as *windows* rather than point events: receptions at
the jammed nodes are dropped (with a seeded probability) for every round
in ``[start, stop)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.radio.rng import SeedLike, make_rng

#: Stage names accepted by symbolic (``after_stage``) event timing.
STAGES = ("election", "bfs", "collection", "dissemination")

#: Event kinds understood by DynamicFaultNetwork.
KINDS = ("crash", "recover", "link_down", "link_up")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled state change.

    ``round`` is the absolute round at which the event takes effect (the
    event applies *before* that round is resolved); ``None`` means the
    timing is symbolic and ``after_stage`` names the boundary.
    """

    kind: str
    round: Optional[int] = None
    node: int = -1
    edge: Optional[Tuple[int, int]] = None
    after_stage: Optional[str] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.round is None) == (self.after_stage is None):
            raise ValueError(
                "exactly one of round / after_stage must be given"
            )
        if self.round is not None and self.round < 0:
            raise ValueError("event round must be non-negative")
        if self.after_stage is not None and self.after_stage not in STAGES:
            raise ValueError(
                f"after_stage must be one of {STAGES}, got "
                f"{self.after_stage!r}"
            )
        if self.kind in ("crash", "recover"):
            if self.node < 0:
                raise ValueError(f"{self.kind} event needs a node id")
        else:
            if self.edge is None:
                raise ValueError(f"{self.kind} event needs an edge")
            u, v = self.edge
            if u == v:
                raise ValueError("link event edge must join distinct nodes")
            if u < 0 or v < 0:
                raise ValueError("link event edge needs non-negative node ids")


@dataclass(frozen=True)
class JamWindow:
    """Receptions at ``nodes`` are dropped with ``prob`` for rounds in
    ``[start, stop)``."""

    start: int
    stop: int
    nodes: FrozenSet[int]
    prob: float = 1.0

    def __post_init__(self):
        if self.start < 0 or self.stop <= self.start:
            raise ValueError("jam window needs 0 <= start < stop")
        if not 0.0 < self.prob <= 1.0:
            raise ValueError("jam probability must be in (0, 1]")
        if not self.nodes:
            raise ValueError("jam window needs at least one node")

    def active(self, round_index: int) -> bool:
        return self.start <= round_index < self.stop


@dataclass
class FaultSchedule:
    """An ordered collection of fault events plus jamming windows.

    The builder methods return ``self`` so schedules read declaratively::

        schedule = (FaultSchedule()
                    .crash(5, at_round=120)
                    .crash(7, after_stage="bfs")
                    .link_down((2, 3), at_round=40)
                    .link_up((2, 3), at_round=90)
                    .jam([0, 1], start=10, stop=30, prob=0.5))
    """

    events: List[FaultEvent] = field(default_factory=list)
    jam_windows: List[JamWindow] = field(default_factory=list)

    # -- builders ------------------------------------------------------

    def crash(self, node: int, at_round: Optional[int] = None,
              after_stage: Optional[str] = None) -> "FaultSchedule":
        self.events.append(FaultEvent(
            "crash", round=at_round, node=int(node), after_stage=after_stage,
        ))
        return self

    def recover(self, node: int, at_round: Optional[int] = None,
                after_stage: Optional[str] = None) -> "FaultSchedule":
        self.events.append(FaultEvent(
            "recover", round=at_round, node=int(node),
            after_stage=after_stage,
        ))
        return self

    def link_down(self, edge: Tuple[int, int],
                  at_round: Optional[int] = None,
                  after_stage: Optional[str] = None) -> "FaultSchedule":
        u, v = (int(edge[0]), int(edge[1]))
        self.events.append(FaultEvent(
            "link_down", round=at_round, edge=(u, v),
            after_stage=after_stage,
        ))
        return self

    def link_up(self, edge: Tuple[int, int],
                at_round: Optional[int] = None,
                after_stage: Optional[str] = None) -> "FaultSchedule":
        u, v = (int(edge[0]), int(edge[1]))
        self.events.append(FaultEvent(
            "link_up", round=at_round, edge=(u, v), after_stage=after_stage,
        ))
        return self

    def jam(self, nodes: Iterable[int], start: int, stop: int,
            prob: float = 1.0) -> "FaultSchedule":
        self.jam_windows.append(JamWindow(
            start=int(start), stop=int(stop),
            nodes=frozenset(int(v) for v in nodes), prob=float(prob),
        ))
        return self

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        """A plain-dict rendering (JSON-ready) of the full timeline.

        Inverse of :meth:`from_json`; the pair round-trips exactly
        (``FaultSchedule.from_json(s.to_json()) == s``), which is what
        the chaos failure artifacts rely on for bit-for-bit replay.
        """
        events = []
        for e in self.events:
            entry: dict = {"kind": e.kind}
            if e.round is not None:
                entry["round"] = e.round
            if e.after_stage is not None:
                entry["after_stage"] = e.after_stage
            if e.edge is not None:
                entry["edge"] = [e.edge[0], e.edge[1]]
            else:
                entry["node"] = e.node
            events.append(entry)
        return {
            "events": events,
            "jam_windows": [
                {
                    "start": w.start,
                    "stop": w.stop,
                    "nodes": sorted(w.nodes),
                    "prob": w.prob,
                }
                for w in self.jam_windows
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_json` output.

        Every entry passes through the :class:`FaultEvent` /
        :class:`JamWindow` constructors, so malformed data (self-loops,
        negative ids, inverted windows) is rejected here rather than
        surfacing later inside an execution.
        """
        events = [
            FaultEvent(
                kind=entry["kind"],
                round=entry.get("round"),
                node=int(entry.get("node", -1)),
                edge=(
                    tuple(int(v) for v in entry["edge"])
                    if entry.get("edge") is not None else None
                ),
                after_stage=entry.get("after_stage"),
            )
            for entry in data.get("events", ())
        ]
        jam_windows = [
            JamWindow(
                start=int(w["start"]),
                stop=int(w["stop"]),
                nodes=frozenset(int(v) for v in w["nodes"]),
                prob=float(w.get("prob", 1.0)),
            )
            for w in data.get("jam_windows", ())
        ]
        return cls(events=events, jam_windows=jam_windows)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events) + len(self.jam_windows)

    @property
    def crashed_ever(self) -> FrozenSet[int]:
        """All nodes that crash at some point (symbolic or concrete)."""
        return frozenset(
            e.node for e in self.events if e.kind == "crash"
        )

    def symbolic_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.round is None]

    def concrete_events(self) -> List[FaultEvent]:
        return sorted(
            (e for e in self.events if e.round is not None),
            key=lambda e: e.round,
        )

    def materialized(self, stage: str, at_round: int) -> List[FaultEvent]:
        """The symbolic events of ``stage``, pinned to ``at_round``."""
        return [
            replace(e, round=at_round, after_stage=None)
            for e in self.events
            if e.round is None and e.after_stage == stage
        ]

    def validate(self, n: int, byzantine: Iterable[int] = (),
                 churn=None, quarantined: Iterable[int] = ()) -> None:
        """Raise on out-of-range nodes and on internally inconsistent
        timelines.

        ``byzantine`` lists nodes assigned Byzantine behavior alongside
        this schedule; a node that both equivocates and crashes is
        rejected (a crashed node cannot transmit, let alone lie),
        mirroring the jam/crash overlap checks below.

        ``quarantined`` lists identities carrying convictions from an
        earlier run (the campaign's persistent blacklist).  They must
        be in range and must leave at least one unquarantined node, and
        a jam window aimed *only* at quarantined nodes is rejected —
        quarantined nodes never transmit protocol traffic, so the
        window could never take effect.  A quarantined node that is
        also Byzantine is legal (an insider convicted last run is still
        an insider); the runtime bars it from every delivery path
        regardless.

        ``churn`` is an optional
        :class:`repro.dynamic.churn.ChurnSchedule` applied beneath this
        fault timeline.  With one given, three cross-layer overlaps are
        rejected — each is an event that can never take effect and so
        always indicates a mis-built scenario:

        - a concrete fault event (crash, recover, or either endpoint of
          a link event) targeting a node that is **absent** at that
          round (it has left, or has not yet joined);
        - a jam window whose node set includes a node absent for the
          window's *entire* span;
        - a Byzantine assignment on a node that never exists in the run
          (initially absent and never joining).

        Symbolic (``after_stage``) events have no decidable position, so
        they are only checked against never-present nodes.

        Beyond node-range checks, two structural errors are rejected:

        - **overlapping jam windows on the same node set** — two windows
          with identical ``nodes`` whose ``[start, stop)`` ranges
          intersect would double-draw the jam coin for those rounds,
          silently changing the effective probability;
        - **events targeting a node after its crash** with no
          intervening recover (a second crash, or a link event touching
          a dead endpoint) — such an event can never take effect and
          always indicates a mis-built schedule.

        Only concretely-timed events are ordered; symbolic
        (``after_stage``) events have no decidable position and are
        checked for node range only.

        The structural event checks (self-loop link edges, negative node
        ids) are re-run here even though :class:`FaultEvent` rejects
        them at construction — schedules deserialized or assembled by
        tools that bypass the constructor must not slip through the one
        gate every execution path calls.
        """
        for e in self.events:
            if e.edge is not None:
                u, v = e.edge
                if u == v:
                    raise ValueError(
                        f"{e.kind} event edge ({u}, {v}) is a self-loop"
                    )
            ids = (e.node,) if e.edge is None else e.edge
            for v in ids:
                if not 0 <= v < n:
                    raise ValueError(
                        f"fault event {e} references node {v}, but n={n}"
                    )
        for w in self.jam_windows:
            for v in w.nodes:
                if not 0 <= v < n:
                    raise ValueError(
                        f"jam window references node {v}, but n={n}"
                    )

        byz = frozenset(byzantine)
        for v in sorted(byz):
            if not 0 <= v < n:
                raise ValueError(
                    f"Byzantine assignment references node {v}, but n={n}"
                )
        for v in sorted(byz & self.crashed_ever):
            raise ValueError(
                f"node {v} is assigned Byzantine behavior but also "
                f"crashes in this schedule; a crashed node cannot "
                f"equivocate — drop it from one of the two fault sets"
            )

        quar = frozenset(int(v) for v in quarantined)
        for v in sorted(quar):
            if not 0 <= v < n:
                raise ValueError(
                    f"carried quarantine references node {v}, but n={n}"
                )
        if quar and len(quar) >= n:
            raise ValueError(
                "carried quarantine covers every node; nothing is left "
                "to run the protocol"
            )
        if quar:
            for w in self.jam_windows:
                if w.nodes and frozenset(w.nodes) <= quar:
                    raise ValueError(
                        f"jam window [{w.start}, {w.stop}) targets only "
                        f"quarantined nodes {sorted(w.nodes)}; they "
                        f"never carry protocol traffic, so the window "
                        f"can never take effect"
                    )

        for i, w1 in enumerate(self.jam_windows):
            for w2 in self.jam_windows[i + 1:]:
                if (w1.nodes == w2.nodes
                        and w1.start < w2.stop and w2.start < w1.stop):
                    raise ValueError(
                        f"overlapping jam windows on the same node set "
                        f"{sorted(w1.nodes)}: [{w1.start}, {w1.stop}) and "
                        f"[{w2.start}, {w2.stop})"
                    )

        # walk the concrete timeline in application order (sorted by
        # round, insertion order within a round — exactly how
        # DynamicFaultNetwork applies them)
        dead_since: dict = {}
        for e in self.concrete_events():
            if e.kind == "crash":
                if e.node in dead_since:
                    raise ValueError(
                        f"node {e.node} crashed at round {e.round} but "
                        f"already crashed at round {dead_since[e.node]} "
                        f"with no intervening recover"
                    )
                dead_since[e.node] = e.round
            elif e.kind == "recover":
                dead_since.pop(e.node, None)
            else:
                for v in e.edge:
                    if v in dead_since:
                        raise ValueError(
                            f"{e.kind} event at round {e.round} targets "
                            f"node {v}, crashed at round "
                            f"{dead_since[v]} with no intervening "
                            f"recover"
                        )

        if churn is not None:
            self._validate_against_churn(churn, byz)

    def _validate_against_churn(self, churn, byz: FrozenSet[int]) -> None:
        """Cross-layer checks against a churn timeline (see
        :meth:`validate`)."""
        timeline = churn.membership()
        never_present = churn.initially_absent - churn.joiners

        for e in self.events:
            ids = (e.node,) if e.edge is None else e.edge
            for v in ids:
                if v in never_present:
                    raise ValueError(
                        f"{e.kind} event targets node {v}, which is "
                        f"initially absent and never joins — it does "
                        f"not exist in this run"
                    )
                if e.round is not None and not timeline.is_present(
                        v, e.round):
                    raise ValueError(
                        f"{e.kind} event at round {e.round} targets "
                        f"node {v}, which is absent at that round "
                        f"(departed or not yet joined)"
                    )

        for w in self.jam_windows:
            for v in sorted(w.nodes):
                if timeline.is_present(v, w.start):
                    continue
                if any(w.start < t < w.stop for t in timeline.toggles(v)):
                    continue  # rejoins mid-window: partially effective
                raise ValueError(
                    f"jam window [{w.start}, {w.stop}) targets node "
                    f"{v}, absent for the window's entire span"
                )

        for v in sorted(byz & never_present):
            raise ValueError(
                f"node {v} is assigned Byzantine behavior but never "
                f"exists in this run (initially absent, never joins)"
            )


def random_crash_schedule(
    n: int,
    fraction: float,
    seed: SeedLike = None,
    at_round: Optional[int] = None,
    after_stage: Optional[str] = None,
    exclude: Iterable[int] = (),
    recover_after: Optional[int] = None,
) -> FaultSchedule:
    """Crash a random ``fraction`` of the eligible nodes at one instant.

    Parameters
    ----------
    n:
        Node count of the target network.
    fraction:
        Fraction of *eligible* nodes (all nodes minus ``exclude``) to
        crash; the count is ``floor(fraction * eligible)``.
    at_round / after_stage:
        Concrete or symbolic timing, exactly one required (defaults to
        ``after_stage="bfs"`` when neither is given — the canonical
        "crash after the tree is built" chaos scenario).
    exclude:
        Nodes never crashed (e.g. the expected leader).
    recover_after:
        When given (and timing is concrete), every crashed node recovers
        ``recover_after`` rounds after the crash.

    The node choice is a seeded draw: same seed, same crash set.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if at_round is None and after_stage is None:
        after_stage = "bfs"
    rng = make_rng(seed)
    excluded = set(int(v) for v in exclude)
    eligible = [v for v in range(n) if v not in excluded]
    count = int(math.floor(fraction * len(eligible)))
    schedule = FaultSchedule()
    if count == 0:
        return schedule
    chosen = rng.choice(len(eligible), size=count, replace=False)
    for idx in sorted(int(i) for i in chosen):
        node = eligible[idx]
        schedule.crash(node, at_round=at_round, after_stage=after_stage)
        if recover_after is not None and at_round is not None:
            schedule.recover(node, at_round=at_round + recover_after)
    return schedule
