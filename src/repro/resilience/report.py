"""Degradation reporting: chaos trials for the experiment harness.

:func:`run_chaos_trial` packages one supervised run under a random crash
schedule into the flat metric dict the experiment harness understands
(:func:`repro.experiments.harness.run_trials` / ``aggregate``), and
:func:`degradation_curve` sweeps a crash-fraction grid into the rows the
benchmark suite and the ``repro chaos`` CLI render as tables.
:func:`run_adversarial_trial` / :func:`adversarial_degradation_curve`
are the same machinery pointed at an *active* adversary (reactive
jamming plus payload corruption) instead of a crash schedule.
:func:`run_byzantine_trial` / :func:`byzantine_degradation_curve` point
it at *insider* faults: a random fraction of nodes runs one of the
:data:`repro.resilience.byzantine.BYZANTINE_MODES` while the honest
majority runs the authenticated protocol.

Accounting discipline: every dropped reception lands in exactly one
bucket.  The fault layer's ``rx_suppressed`` counts erasures (dead /
link / scheduled jam / adversarial jam); ``rx_corrupted`` counts
receptions *delivered* with flipped bits, of which
``corrupt_discarded`` were caught and quarantined by the integrity
layer — those are receiver-side discards, never double-counted as
suppressed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.packets import Packet
from repro.core.config import AlgorithmParameters
from repro.radio.network import RadioNetwork
from repro.radio.rng import SeedLike
from repro.resilience.adversary import (
    Adversary,
    AdversaryStack,
    BudgetedJammer,
    CorruptionChannel,
    ReactiveJammer,
)
from repro.resilience.byzantine import random_byzantine_set
from repro.resilience.schedule import FaultSchedule, random_crash_schedule
from repro.resilience.supervisor import (
    SupervisedBroadcast,
    SupervisedResult,
    SupervisionPolicy,
)


def supervised_metrics(result: SupervisedResult) -> Dict[str, float]:
    """Flatten a :class:`SupervisedResult` for trial aggregation.

    ``rx_suppressed`` + ``corrupt_discarded`` is the total number of
    receptions the run lost to faults and adversaries; the two terms are
    disjoint by construction (suppressed receptions never reach the
    integrity layer).
    """
    stats = result.fault_stats
    rx_suppressed = float(
        stats.get("rx_suppressed_dead", 0)
        + stats.get("rx_suppressed_link", 0)
        + stats.get("rx_suppressed_jam", 0)
        + stats.get("rx_jammed_adversary", 0)
    )
    return {
        "success": float(result.success),
        "informed_fraction": result.informed_fraction,
        "coverage": result.coverage,
        "total_rounds": float(result.total_rounds),
        "round_budget": float(result.round_budget),
        "budget_used": (
            result.total_rounds / result.round_budget
            if result.round_budget else 0.0
        ),
        "retries": float(result.retries),
        "repairs": float(result.repairs_run),
        "reelections": float(result.reelections),
        "watchdog_tripped": float(result.watchdog_tripped),
        "packets_lost": float(len(result.packets_lost)),
        "packets_undelivered": float(len(result.packets_undelivered)),
        "survivors": float(len(result.survivors)),
        "crashes": float(stats.get("crashes", 0)),
        "tx_suppressed": float(stats.get("tx_suppressed", 0)),
        "rx_suppressed": rx_suppressed,
        "rx_jammed_scheduled": float(stats.get("rx_suppressed_jam", 0)),
        "rx_jammed_adversary": float(stats.get("rx_jammed_adversary", 0)),
        "rx_corrupted": float(stats.get("rx_corrupted", 0)),
        "corrupt_discarded": float(result.corrupt_discarded),
        "mis_decodes": float(result.mis_decodes),
        "rx_dropped_total": rx_suppressed + float(result.corrupt_discarded),
        "byzantine_nodes": float(stats.get("byzantine_nodes", 0)),
        "rx_swallowed_byzantine": float(
            stats.get("rx_swallowed_byzantine", 0)
        ),
        "byzantine_rx_discarded": float(result.byzantine_rx_discarded),
        "forged_acks_rejected": float(result.forged_acks_rejected),
        "poisoned_rows_attributed": float(result.poisoned_rows_attributed),
        "blacklisted": float(len(result.blacklisted)),
        "suspected": float(len(result.suspected)),
        "mis_attributions": float(result.mis_attributions),
        "all_lost": float(result.all_lost),
    }


def run_chaos_trial(
    network: RadioNetwork,
    packets: Sequence[Packet],
    crash_fraction: float,
    seed: int,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
    after_stage: str = "bfs",
    exclude: Sequence[int] = (),
    schedule: Optional[FaultSchedule] = None,
) -> Dict[str, float]:
    """One supervised run under a seeded random crash schedule.

    The expected leader (the max-ID packet holder) is always excluded
    from the crash draw in addition to ``exclude`` — crash-the-leader
    scenarios are a separate, explicitly scheduled experiment (the
    supervisor's re-election path), not part of the degradation sweep.
    """
    if schedule is None:
        leader_guess = max(p.origin for p in packets) if packets else 0
        schedule = random_crash_schedule(
            network.n,
            crash_fraction,
            seed=seed,
            after_stage=after_stage,
            exclude=set(exclude) | {leader_guess},
        )
    result = SupervisedBroadcast(
        network,
        schedule=schedule,
        params=params,
        policy=policy,
        seed=seed,
    ).run(packets)
    return supervised_metrics(result)


def degradation_curve(
    make_network: Callable[[], RadioNetwork],
    make_packets: Callable[[RadioNetwork], Sequence[Packet]],
    crash_fractions: Sequence[float],
    trials: int = 3,
    base_seed: int = 0,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[Tuple[float, Dict[str, float]]]:
    """Sweep crash fractions; mean metrics per fraction.

    Returns ``[(fraction, mean_metric_dict), ...]`` — the degradation
    curve the R1 benchmark renders.
    """
    from repro.experiments.harness import aggregate, run_trials

    curve: List[Tuple[float, Dict[str, float]]] = []
    for fraction in crash_fractions:
        network = make_network()
        packets = make_packets(network)

        def trial(seed: int, _f=fraction, _net=network, _pkts=packets):
            return run_chaos_trial(
                _net, _pkts, _f, seed, params=params, policy=policy,
            )

        results = run_trials(trial, trials, base_seed=base_seed)
        stats = aggregate(results)
        curve.append(
            (fraction, {key: s.mean for key, s in stats.items()})
        )
    return curve


def make_adversary(
    jam_prob: float = 0.0,
    corruption_rate: float = 0.0,
    jam_budget: Optional[int] = None,
    seed: SeedLike = None,
) -> Optional[Adversary]:
    """Build the standard adversary stack from sweep knobs.

    Jammers act before the corruption channel (a jammed reception cannot
    also be corrupted, keeping the accounting disjoint).  Returns
    ``None`` when every knob is off, so callers preserve the exact
    adversary-free RNG stream.
    """
    parts: List[Adversary] = []
    seed_seq = np.random.SeedSequence(
        seed if isinstance(seed, int) else None
    )
    children = seed_seq.spawn(3)
    if jam_prob > 0.0:
        parts.append(ReactiveJammer(jam_prob, seed=children[0]))
    if jam_budget is not None and jam_budget > 0:
        parts.append(BudgetedJammer(jam_budget, seed=children[1]))
    if corruption_rate > 0.0:
        parts.append(CorruptionChannel(corruption_rate, seed=children[2]))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return AdversaryStack(parts)


def run_adversarial_trial(
    network: RadioNetwork,
    packets: Sequence[Packet],
    jam_prob: float,
    corruption_rate: float,
    seed: int,
    jam_budget: Optional[int] = None,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
    schedule: Optional[FaultSchedule] = None,
) -> Dict[str, float]:
    """One supervised run under an active adversary (no crashes unless a
    schedule is given explicitly)."""
    adversary = make_adversary(
        jam_prob=jam_prob,
        corruption_rate=corruption_rate,
        jam_budget=jam_budget,
        seed=seed,
    )
    result = SupervisedBroadcast(
        network,
        schedule=schedule or FaultSchedule(),
        params=params,
        policy=policy,
        seed=seed,
        adversary=adversary,
    ).run(packets)
    return supervised_metrics(result)


def run_byzantine_trial(
    network: RadioNetwork,
    packets: Sequence[Packet],
    fraction: float,
    mode: str,
    seed: int,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
    schedule: Optional[FaultSchedule] = None,
    authentication: bool = True,
) -> Dict[str, float]:
    """One supervised run with a random ``fraction`` of insiders.

    Authentication defaults to *on* — the hardened configuration the R3
    experiment measures; pass ``authentication=False`` to watch the
    attacks land.  As in :func:`run_chaos_trial`, the expected leader
    (the max-ID packet holder) is excluded from the insider draw so the
    sweep measures degradation around an honest root; leader-capture is
    the explicitly separate ``id_inflation``-without-authentication
    scenario.  The returned metrics add ``lost_honest_origin``: lost
    packets whose origin was honest — zero whenever the recovery
    machinery holds.
    """
    leader_guess = max(p.origin for p in packets) if packets else 0
    byzantine = random_byzantine_set(
        network.n, fraction, mode, seed=seed, exclude={leader_guess},
    )
    trial_params = (params or AlgorithmParameters()).with_overrides(
        authentication=authentication,
    )
    result = SupervisedBroadcast(
        network,
        schedule=schedule or FaultSchedule(),
        params=trial_params,
        policy=policy,
        seed=seed,
        byzantine=byzantine,
    ).run(packets)
    metrics = supervised_metrics(result)
    byz_nodes = byzantine.nodes if byzantine is not None else frozenset()
    origin_of = {p.pid: p.origin for p in packets}
    metrics["lost_honest_origin"] = float(sum(
        1 for pid in result.packets_lost
        if origin_of[pid] not in byz_nodes
    ))
    return metrics


def byzantine_degradation_curve(
    make_network: Callable[[], RadioNetwork],
    make_packets: Callable[[RadioNetwork], Sequence[Packet]],
    points: Sequence[Tuple[float, str]],
    trials: int = 3,
    base_seed: int = 0,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
    authentication: bool = True,
) -> List[Tuple[Tuple[float, str], Dict[str, float]]]:
    """Sweep ``(fraction, mode)`` points; mean metrics each.

    Returns ``[((fraction, mode), mean_metric_dict), ...]`` — the
    degradation curve the R3 benchmark renders.
    """
    from repro.experiments.harness import aggregate, run_trials

    curve: List[Tuple[Tuple[float, str], Dict[str, float]]] = []
    for fraction, mode in points:
        network = make_network()
        packets = make_packets(network)

        def trial(seed: int, _f=fraction, _m=mode,
                  _net=network, _pkts=packets):
            return run_byzantine_trial(
                _net, _pkts, _f, _m, seed,
                params=params, policy=policy,
                authentication=authentication,
            )

        results = run_trials(trial, trials, base_seed=base_seed)
        stats = aggregate(results)
        curve.append(
            ((fraction, mode),
             {key: s.mean for key, s in stats.items()})
        )
    return curve


def adversarial_degradation_curve(
    make_network: Callable[[], RadioNetwork],
    make_packets: Callable[[RadioNetwork], Sequence[Packet]],
    points: Sequence[Tuple[float, float]],
    trials: int = 3,
    base_seed: int = 0,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[Tuple[Tuple[float, float], Dict[str, float]]]:
    """Sweep ``(jam_prob, corruption_rate)`` points; mean metrics each.

    Returns ``[((jam_prob, corruption_rate), mean_metric_dict), ...]`` —
    the degradation curve the R2 benchmark renders.
    """
    from repro.experiments.harness import aggregate, run_trials

    curve: List[Tuple[Tuple[float, float], Dict[str, float]]] = []
    for jam_prob, corruption_rate in points:
        network = make_network()
        packets = make_packets(network)

        def trial(seed: int, _jp=jam_prob, _cr=corruption_rate,
                  _net=network, _pkts=packets):
            return run_adversarial_trial(
                _net, _pkts, _jp, _cr, seed,
                params=params, policy=policy,
            )

        results = run_trials(trial, trials, base_seed=base_seed)
        stats = aggregate(results)
        curve.append(
            ((jam_prob, corruption_rate),
             {key: s.mean for key, s in stats.items()})
        )
    return curve
