"""Degradation reporting: chaos trials for the experiment harness.

:func:`run_chaos_trial` packages one supervised run under a random crash
schedule into the flat metric dict the experiment harness understands
(:func:`repro.experiments.harness.run_trials` / ``aggregate``), and
:func:`degradation_curve` sweeps a crash-fraction grid into the rows the
benchmark suite and the ``repro chaos`` CLI render as tables.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.coding.packets import Packet
from repro.core.config import AlgorithmParameters
from repro.radio.network import RadioNetwork
from repro.resilience.schedule import FaultSchedule, random_crash_schedule
from repro.resilience.supervisor import (
    SupervisedBroadcast,
    SupervisedResult,
    SupervisionPolicy,
)


def supervised_metrics(result: SupervisedResult) -> Dict[str, float]:
    """Flatten a :class:`SupervisedResult` for trial aggregation."""
    stats = result.fault_stats
    return {
        "success": float(result.success),
        "informed_fraction": result.informed_fraction,
        "coverage": result.coverage,
        "total_rounds": float(result.total_rounds),
        "round_budget": float(result.round_budget),
        "budget_used": (
            result.total_rounds / result.round_budget
            if result.round_budget else 0.0
        ),
        "retries": float(result.retries),
        "repairs": float(result.repairs_run),
        "reelections": float(result.reelections),
        "watchdog_tripped": float(result.watchdog_tripped),
        "packets_lost": float(len(result.packets_lost)),
        "packets_undelivered": float(len(result.packets_undelivered)),
        "survivors": float(len(result.survivors)),
        "crashes": float(stats.get("crashes", 0)),
        "tx_suppressed": float(stats.get("tx_suppressed", 0)),
        "rx_suppressed": float(
            stats.get("rx_suppressed_dead", 0)
            + stats.get("rx_suppressed_link", 0)
            + stats.get("rx_suppressed_jam", 0)
        ),
    }


def run_chaos_trial(
    network: RadioNetwork,
    packets: Sequence[Packet],
    crash_fraction: float,
    seed: int,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
    after_stage: str = "bfs",
    exclude: Sequence[int] = (),
    schedule: Optional[FaultSchedule] = None,
) -> Dict[str, float]:
    """One supervised run under a seeded random crash schedule.

    The expected leader (the max-ID packet holder) is always excluded
    from the crash draw in addition to ``exclude`` — crash-the-leader
    scenarios are a separate, explicitly scheduled experiment (the
    supervisor's re-election path), not part of the degradation sweep.
    """
    if schedule is None:
        leader_guess = max(p.origin for p in packets) if packets else 0
        schedule = random_crash_schedule(
            network.n,
            crash_fraction,
            seed=seed,
            after_stage=after_stage,
            exclude=set(exclude) | {leader_guess},
        )
    result = SupervisedBroadcast(
        network,
        schedule=schedule,
        params=params,
        policy=policy,
        seed=seed,
    ).run(packets)
    return supervised_metrics(result)


def degradation_curve(
    make_network: Callable[[], RadioNetwork],
    make_packets: Callable[[RadioNetwork], Sequence[Packet]],
    crash_fractions: Sequence[float],
    trials: int = 3,
    base_seed: int = 0,
    params: Optional[AlgorithmParameters] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[Tuple[float, Dict[str, float]]]:
    """Sweep crash fractions; mean metrics per fraction.

    Returns ``[(fraction, mean_metric_dict), ...]`` — the degradation
    curve the R1 benchmark renders.
    """
    from repro.experiments.harness import aggregate, run_trials

    curve: List[Tuple[float, Dict[str, float]]] = []
    for fraction in crash_fractions:
        network = make_network()
        packets = make_packets(network)

        def trial(seed: int, _f=fraction, _net=network, _pkts=packets):
            return run_chaos_trial(
                _net, _pkts, _f, seed, params=params, policy=policy,
            )

        results = run_trials(trial, trials, base_seed=base_seed)
        stats = aggregate(results)
        curve.append(
            (fraction, {key: s.mean for key, s in stats.items()})
        )
    return curve
