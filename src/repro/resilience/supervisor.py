"""Self-healing supervision of the four-stage broadcast.

:class:`SupervisedBroadcast` wraps the paper's pipeline (election → BFS →
collection → dissemination) with the recovery machinery the paper's
static fault-free model never needed:

- **watchdog budgets** — every stage has a round budget derived from the
  paper's own bounds (Fact 1, Theorem 1, Lemma 5, Lemma 7) times a
  safety factor; the total budget is finite by construction, so a run
  *terminates* within it instead of hanging, no matter what the fault
  schedule does;
- **bounded retry with exponential backoff** — a failed stage attempt is
  retried with an escalated epoch budget after an exponentially growing
  idle wait (during which scheduled recoveries can land);
- **leader re-election** — if the elected root crashes mid-run, the
  survivors re-elect among the alive packet holders and re-run the
  pipeline for the packets still outstanding (origins keep their
  packets, so re-collection is possible);
- **BFS-tree repair** — when interior tree nodes die, orphaned subtrees
  are re-parented by a short Decay announcement epoch
  (:mod:`repro.resilience.repair`) before collection or dissemination is
  retried;
- **detection-driven escalation** — when a dissemination attempt falls
  short and the evidence points at an active adversary (the hardened
  decoders quarantined corrupted rows, or the fault layer logged
  jamming-consistent reception losses during the attempt), the retry
  re-runs the epoch with exponentially deepened Decay schedules and
  re-requests the still-undelivered groups through the normal retry
  path; mis-decoded deliveries (possible only with integrity checks
  disabled) are never counted as delivered;
- **quorum-audited insider recovery** — with per-node authentication
  enabled, cryptographically attributed misbehavior (forged leadership
  claims, BFS layer lies, forged ACKs, poisoned coded rows) *convicts*
  the sender: it is blacklisted, its traffic ignored, its packets
  declared lost, and elections re-run without it.  Silent black holes
  leave no such evidence, so a statistical path audit promotes repeat
  offenders to *suspects* that are routed around — but never convicted,
  keeping ``mis_attributions`` at zero by construction.

Metrics are honest: a packet whose origin dies before any surviving root
collected it is *lost* (reported, not hidden), and ``informed_fraction``
is measured over surviving nodes and non-lost packets.

A fault-free supervised run consumes the RNG in exactly the same order
as :class:`repro.core.multibroadcast.MultipleMessageBroadcast`, so with
an empty schedule the two produce identical executions — supervision is
free until something breaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coding.packets import Packet
from repro.core.collection import grab_schedule, run_collection_stage
from repro.core.config import AlgorithmParameters
from repro.core.dissemination import run_dissemination_stage
from repro.primitives.bfs import build_distributed_bfs
from repro.primitives.decay import decay_slots
from repro.primitives.leader_election import elect_leader
from repro.radio.rng import SeedLike, make_rng
from repro.radio.trace import RoundTrace
from repro.resilience.network import DynamicFaultNetwork
from repro.resilience.repair import (
    TreeRepairResult,
    attached_set,
    default_repair_epochs,
    repair_tree,
)
from repro.resilience.schedule import FaultSchedule


@dataclass(frozen=True)
class SupervisionPolicy:
    """Watchdog, retry, and repair knobs.

    Attributes
    ----------
    stage_timeout_factor:
        Safety multiplier on the total watchdog budget.  The per-stage
        formulas below are already worst-case, so 1.0 is a hard bound;
        the default leaves modest slack for future engine changes.
    max_stage_retries:
        Extra attempts per stage after the first (0 = no retry).
    max_reelections:
        How many times a crashed leader may be replaced before the run
        gives up (each replacement restarts the pipeline for the
        outstanding packets).
    backoff_rounds / backoff_base:
        Retry ``i`` waits ``backoff_rounds * backoff_base**i`` idle
        rounds before re-attempting (exponential backoff; recoveries
        scheduled during the wait take effect).
    budget_escalation:
        Epoch-budget multiplier applied per retry (attempt ``i`` runs
        with ``ceil(base * budget_escalation**i)`` epochs).
    repair_epoch_factor:
        Decay-epoch budget factor for one tree-repair pass,
        ``factor * (D + log2 n)`` epochs.
    collection_phase_cap:
        Cap on Stage 3's estimate-doubling phases per attempt — under
        faults the doubling loop is the one unbounded-looking piece, and
        the cap turns it into a fixed-length attempt the watchdog can
        account for.
    enable_tree_repair:
        Ablation switch for the Decay-based tree repair pass.  ``False``
        leaves orphaned subtrees detached after interior crashes — the
        known-broken configuration the chaos fuzzer
        (:mod:`repro.resilience.chaos`) must catch and shrink to a
        minimal crash; production code never turns it off.
    audit_quorum:
        Quorum for the collection path audit (authenticated runs only):
        an interior tree node is promoted to *routing suspect* — routed
        around, never blacklisted — once it sits on the failing
        origin→root path of at least this many un-collected packets
        while appearing on no succeeding path.  Silent black holes leave
        no cryptographic evidence, so suspicion is statistical; the
        quorum keeps one unlucky collision streak from triggering it.
    """

    stage_timeout_factor: float = 1.25
    max_stage_retries: int = 2
    max_reelections: int = 2
    backoff_rounds: int = 32
    backoff_base: float = 2.0
    budget_escalation: float = 1.5
    repair_epoch_factor: float = 2.0
    collection_phase_cap: int = 8
    enable_tree_repair: bool = True
    audit_quorum: int = 2

    # -- per-stage worst-case round formulas ---------------------------

    def escalated(self, base: int, attempt: int) -> int:
        """Epoch budget for the given retry attempt (0 = first try)."""
        return max(1, math.ceil(base * self.budget_escalation ** attempt))

    def backoff_wait(self, attempt: int) -> int:
        """Idle rounds to wait before retry ``attempt`` (1-based)."""
        return max(1, math.ceil(
            self.backoff_rounds * self.backoff_base ** (attempt - 1)
        ))

    def election_rounds(self, network, params: AlgorithmParameters,
                        id_bound: int, attempt: int = 0) -> int:
        probes = max(1, math.ceil(math.log2(max(id_bound, 2))))
        epochs = self.escalated(params.bgi_epochs(network), attempt)
        return probes * epochs * decay_slots(network.max_degree)

    def bfs_rounds(self, network, params: AlgorithmParameters,
                   depth_bound: int, attempt: int = 0) -> int:
        epochs = self.escalated(params.bfs_epochs(network), attempt)
        return depth_bound * epochs * decay_slots(network.max_degree)

    def collection_rounds(self, network, params: AlgorithmParameters,
                          depth_bound: int) -> int:
        """Worst-case Stage-3 rounds with the phase cap: exact arithmetic
        over the engine's own fixed-length procedure schedule."""
        wf = max(1, int(params.ospg_window_factor))
        c_log_n = params.c_log_n(network.n)
        alarm = params.bgi_epochs(network) * decay_slots(network.max_degree)

        def procedure(window: int) -> int:
            t1 = window + depth_bound
            return t1 + 3 * t1 + depth_bound

        total = 0
        x = params.initial_collection_estimate(network, depth_bound)
        phases = 0
        cap = min(self.collection_phase_cap, params.max_collection_phases)
        while phases < cap:
            phases += 1
            for y in grab_schedule(x, c_log_n):
                total += procedure(wf * y)
            if params.mspg_enabled:
                total += procedure(wf * c_log_n * c_log_n)
            total += alarm
            x *= 2
            if x > params.max_k_estimate(network.n):
                break
        return total

    def dissemination_rounds(self, network, params: AlgorithmParameters,
                             k: int, attempt: int = 0) -> int:
        """Worst-case Stage-4 rounds: repaired trees can be deeper than
        the true BFS tree, so the eccentricity is bounded by n-1."""
        width = params.group_width(network.n)
        g = max(1, math.ceil(k / width))
        epochs = self.escalated(params.forward_epochs(width), attempt)
        phase_len = max(width, epochs * decay_slots(network.max_degree))
        ecc_bound = max(1, network.n - 1)
        return (params.group_spacing * (g - 1) + ecc_bound) * phase_len

    def repair_rounds(self, network) -> int:
        epochs = default_repair_epochs(network, self.repair_epoch_factor)
        return epochs * decay_slots(network.max_degree)

    def total_round_budget(self, network, params: AlgorithmParameters,
                           k: int, depth_bound: int,
                           id_bound: Optional[int] = None) -> int:
        """The global watchdog budget: the sum of every attempt the
        supervisor could ever make.  Actual executions are a subset of
        those attempts and every attempt's length is bounded by its
        formula, so ``total_rounds <= budget`` holds by construction."""
        if id_bound is None:
            id_bound = network.n
        attempts = self.max_stage_retries + 1
        per_cycle = 0
        for a in range(attempts):
            per_cycle += self.election_rounds(network, params, id_bound, a)
            per_cycle += self.bfs_rounds(network, params, depth_bound, a)
            per_cycle += self.dissemination_rounds(network, params, k, a)
        per_cycle += attempts * self.collection_rounds(
            network, params, depth_bound
        )
        # one repair pass may precede every collection/dissemination attempt
        per_cycle += 2 * attempts * self.repair_rounds(network)
        # backoff waits between attempts of the four stages
        per_cycle += 4 * sum(
            self.backoff_wait(a) for a in range(1, attempts)
        )
        cycles = self.max_reelections + 1
        return math.ceil(
            max(1.0, self.stage_timeout_factor) * cycles * per_cycle
        )


@dataclass
class StageAttempt:
    """One attempt at one stage (retries get their own entries)."""

    stage: str
    cycle: int
    attempt: int
    rounds: int
    ok: bool
    detail: str = ""


@dataclass
class SupervisedResult:
    """End-to-end outcome of a supervised run.

    ``success`` means every surviving node knows every non-lost packet,
    no watchdog tripped, and not everything was lost.
    ``informed_fraction`` is measured over surviving non-blacklisted
    nodes and non-lost packets (1.0 = full recovery); ``coverage`` is
    the fraction of the original k that was not lost to origin crashes
    or origin blacklisting.

    ``blacklisted`` nodes were *convicted* on cryptographic evidence (a
    verified hop signature wrapping invalid inner content);
    ``suspected`` nodes were only statistically implicated by the
    collection path audit and are routed around, never convicted.
    ``mis_attributions`` counts blacklisted nodes that were in fact
    honest — the attribution rule is designed to keep this at zero.
    ``all_lost`` reports the explicit dead end where every packet was
    lost (origins crashed or blacklisted before collection).
    """

    n: int
    k: int
    success: bool
    informed_fraction: float
    coverage: float
    leader: int
    total_rounds: int
    round_budget: int
    watchdog_tripped: bool
    timing: Dict[str, int]
    attempts: List[StageAttempt] = field(repr=False, default_factory=list)
    repairs: List[TreeRepairResult] = field(repr=False, default_factory=list)
    reelections: int = 0
    retries: int = 0
    packets_lost: List[int] = field(default_factory=list)
    packets_undelivered: List[int] = field(default_factory=list)
    survivors: List[int] = field(repr=False, default_factory=list)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    corrupt_discarded: int = 0
    mis_decodes: int = 0
    timeline: List[Tuple[int, str]] = field(repr=False, default_factory=list)
    trace: Optional[RoundTrace] = field(repr=False, default=None)
    blacklisted: List[int] = field(default_factory=list)
    suspected: List[int] = field(default_factory=list)
    byzantine_rx_discarded: int = 0
    forged_acks_rejected: int = 0
    poisoned_rows_attributed: int = 0
    mis_attributions: int = 0
    all_lost: bool = False

    @property
    def repairs_run(self) -> int:
        return len(self.repairs)


class SupervisedBroadcast:
    """Run the four-stage broadcast under a fault schedule, self-healing.

    Parameters
    ----------
    network:
        A plain network (wrapped together with ``schedule`` into a
        :class:`DynamicFaultNetwork`) or an existing
        :class:`DynamicFaultNetwork`.
    schedule:
        Fault timeline; only valid when ``network`` is not already
        wrapped.
    params / seed / depth_bound / node_ids:
        As in :class:`repro.core.multibroadcast.MultipleMessageBroadcast`.
    policy:
        The :class:`SupervisionPolicy` (watchdog/retry/repair knobs).
    adversary:
        Optional :class:`repro.resilience.adversary.Adversary` applied
        through the fault network (only when ``network`` is not already
        wrapped).  ``None`` keeps the run bit-identical to the plain
        engine's RNG stream.
    byzantine:
        Optional :class:`repro.resilience.byzantine.ByzantineSet` of
        insider nodes (only when ``network`` is not already wrapped).
        The set is synced with the run's integrity configuration so the
        insiders know exactly what a protocol participant would know.
        ``None`` keeps the run bit-identical to the plain engine.
    initial_blacklist:
        Identities convicted before this run (carried quarantine).
        They are excluded from elections, repair routing, and the
        honest audience from the first round, their packets are
        reported lost with cause, and — being prior convictions — they
        never count toward ``mis_attributions``.
    """

    def __init__(
        self,
        network,
        schedule: Optional[FaultSchedule] = None,
        params: Optional[AlgorithmParameters] = None,
        policy: Optional[SupervisionPolicy] = None,
        seed: SeedLike = None,
        depth_bound: Optional[int] = None,
        keep_trace: bool = False,
        node_ids: Optional[Sequence[int]] = None,
        adversary=None,
        byzantine=None,
        initial_blacklist: Sequence[int] = (),
    ):
        if isinstance(network, DynamicFaultNetwork):
            if (schedule is not None or adversary is not None
                    or byzantine is not None):
                raise ValueError(
                    "pass the schedule/adversary/byzantine set either "
                    "inside the DynamicFaultNetwork or separately, not both"
                )
            self.net = network
        else:
            self.net = DynamicFaultNetwork(
                network, schedule or FaultSchedule(), seed=seed,
                adversary=adversary, byzantine=byzantine,
            )
        self.params = params or AlgorithmParameters()
        self.params.apply_engine(self.net)
        self.byz = getattr(self.net, "byzantine", None)
        if self.byz is not None:
            self.byz.configure(
                integrity_key=self.params.integrity_key,
                auth_master_key=self.params.auth_master_key,
                authentication=self.params.authentication,
            )
        self.policy = policy or SupervisionPolicy()
        self.rng = make_rng(seed)
        self.depth_bound = depth_bound or self.net.diameter
        self.node_ids = node_ids
        self.initial_blacklist = frozenset(
            int(v) for v in initial_blacklist
        )
        if any(not 0 <= v < self.net.n for v in self.initial_blacklist):
            raise ValueError(
                "initial_blacklist references nodes outside the network"
            )
        self.trace = RoundTrace() if keep_trace else None
        if self.trace is not None and self.net.trace is None:
            self.net.trace = self.trace

    # ------------------------------------------------------------------

    def run(self, packets: Sequence[Packet]) -> SupervisedResult:
        net, params, policy = self.net, self.params, self.policy
        rng = self.rng
        n = net.n
        k = len(packets)
        id_bound = (
            max(self.node_ids) + 1 if self.node_ids is not None else n
        )

        for p in packets:
            if not 0 <= p.origin < n:
                raise ValueError(
                    f"packet {p.pid} origin {p.origin} out of range"
                )

        budget = policy.total_round_budget(
            net, params, max(k, 1), self.depth_bound, id_bound
        )
        timing = {key: 0 for key in (
            "election", "bfs", "collection", "dissemination",
            "repair", "backoff",
        )}
        attempts: List[StageAttempt] = []
        repairs: List[TreeRepairResult] = []
        timeline: List[Tuple[int, str]] = []
        self._rounds = 0
        watchdog = [False]

        by_pid = {p.pid: p for p in packets}
        pid_col = {p.pid: i for i, p in enumerate(packets)}
        origin_of = {p.pid: p.origin for p in packets}
        knows = np.zeros((n, max(k, 1)), dtype=bool)
        for p in packets:
            knows[p.origin, pid_col[p.pid]] = True

        remaining: Set[int] = set(by_pid)
        lost: Set[int] = set()
        leader = -1
        reelections = -1  # first election is not a re-election
        corrupt_discarded_total = 0
        mis_decodes_total = 0

        byz = self.byz
        auth = params.authentication
        blacklist: Set[int] = set(self.initial_blacklist)
        suspects: Set[int] = set()
        suspicion: Dict[int, int] = {}
        byz_rx_discarded_total = 0
        forged_acks_total = 0
        poisoned_rows_total = 0

        def note(text: str) -> None:
            timeline.append((self._rounds, text))

        def convict(nodes, reason: str) -> None:
            """Blacklist nodes caught on cryptographic evidence."""
            fresh = sorted(set(nodes) - blacklist)
            if not fresh:
                return
            blacklist.update(fresh)
            suspects.difference_update(fresh)
            note(f"blacklist: nodes {fresh} ({reason})")

        def certified_id(v: int) -> int:
            return self.node_ids[v] if self.node_ids is not None else v

        if self.initial_blacklist:
            note(
                f"blacklist: carried convictions "
                f"{sorted(self.initial_blacklist)} (persistent quarantine)"
            )

        def interior_path(parent, origin: int) -> Optional[List[int]]:
            """Interior relays on origin's parent chain to the current
            leader, or None if the chain is broken or cyclic."""
            path: List[int] = []
            seen = {origin}
            v = parent[origin] if 0 <= origin < n else -1
            while v >= 0 and v != leader and v not in seen:
                path.append(v)
                seen.add(v)
                v = parent[v]
            return path if v == leader else None

        def charge(stage: str, rounds: int) -> None:
            self._rounds += rounds
            timing[stage] += rounds
            net.advance_to(self._rounds)

        def over_budget() -> bool:
            if self._rounds >= budget:
                if not watchdog[0]:
                    watchdog[0] = True
                    note("watchdog: round budget exhausted")
                return True
            return False

        def backoff(stage: str, attempt: int) -> None:
            wait = policy.backoff_wait(attempt)
            note(f"{stage}: backing off {wait} rounds before retry")
            charge("backoff", wait)

        def run_repair(parent, distance) -> Tuple[List[int], List[int]]:
            """Repair if any alive node is detached; returns the
            (possibly updated) parent/distance lists.  Convicted nodes
            are treated as dead; suspects are routed around (their
            children re-parent elsewhere) but may themselves re-adopt
            so their own packets keep a route to the root."""
            exclude = frozenset(blacklist)
            mute = frozenset(suspects)
            if exclude or mute:
                def routing_alive(v, _bad=exclude | mute):
                    return net.is_alive(v) and v not in _bad
            else:
                routing_alive = net.is_alive
            att = attached_set(parent, distance, leader, routing_alive)
            orphans = [
                v for v in range(n)
                if net.is_alive(v) and v not in exclude and v not in att
            ]
            if not orphans or over_budget():
                return parent, distance
            if not policy.enable_tree_repair:
                note(
                    f"repair: DISABLED by ablation; "
                    f"{len(orphans)} orphaned nodes left detached"
                )
                return parent, distance
            note(f"repair: {len(orphans)} orphaned nodes, re-parenting")
            rep = repair_tree(
                net, parent, distance, leader, rng,
                epochs=default_repair_epochs(
                    net, policy.repair_epoch_factor
                ),
                trace=self.trace,
                round_offset=self._rounds,
                exclude=exclude,
                mute=mute,
            )
            charge("repair", rep.rounds)
            repairs.append(rep)
            if rep.unreachable:
                note(
                    f"repair: {len(rep.unreachable)} nodes unreachable "
                    f"(entire neighborhood dead)"
                )
            return rep.parent, rep.distance

        def prune_lost(collected_here: Set[int]) -> None:
            """Packets whose origin died — or was convicted as an
            insider — before any surviving root holds them are lost;
            drop them honestly."""
            for pid in sorted(remaining):
                if pid in collected_here:
                    continue
                origin = origin_of[pid]
                if not net.is_alive(origin):
                    remaining.discard(pid)
                    lost.add(pid)
                    note(f"packet {pid} lost: origin crashed uncollected")
                elif origin in blacklist:
                    remaining.discard(pid)
                    lost.add(pid)
                    note(
                        f"packet {pid} lost: origin {origin} blacklisted "
                        f"uncollected"
                    )

        cycle = 0
        root_holdings: Set[int] = set()
        while remaining and cycle < policy.max_reelections + 1:
            cycle += 1
            reelections += 1
            if over_budget():
                break
            prune_lost(set())
            if not remaining:
                break

            candidates = sorted({
                origin_of[pid] for pid in remaining
                if net.is_alive(origin_of[pid])
                and origin_of[pid] not in blacklist
            })
            if not candidates:
                # Dead end: every remaining packet holder is crashed or
                # blacklisted.  Report all-lost explicitly instead of
                # burning re-election cycles and retry backoffs.
                for pid in sorted(remaining):
                    remaining.discard(pid)
                    lost.add(pid)
                    note(f"packet {pid} lost: no eligible holder remains")
                note(
                    "election: every remaining packet holder is crashed "
                    "or blacklisted; reporting all packets lost"
                )
                break

            # ---- Stage 1: leader election (retry on split/dead claim) --
            leader = -1
            for attempt in range(policy.max_stage_retries + 1):
                if over_budget():
                    break
                election = elect_leader(
                    net, candidates, rng,
                    epochs_per_probe=policy.escalated(
                        params.bgi_epochs(net), attempt
                    ),
                    trace=self.trace,
                    node_ids=self.node_ids,
                )
                charge("election", election.rounds)
                forged = (
                    byz.election_claims(id_bound, net.is_alive)
                    if byz is not None else []
                )
                winner = -1
                if forged and auth:
                    # Authenticated IDs: cross-validate every claim
                    # against the certified table.  A forged claim is an
                    # ID the claimant's key cannot certify — convict.
                    convict(
                        (v for v, claimed in forged
                         if claimed != certified_id(v)),
                        "forged leadership claim",
                    )
                    verified = [
                        c for c in election.claimants
                        if c not in blacklist and net.is_alive(c)
                    ]
                    claim_ok = len(verified) == 1
                    if claim_ok:
                        winner = verified[0]
                elif forged:
                    # Unauthenticated IDs: the inflated claim wins the
                    # comparison — the insider captures the election.
                    all_claims = [
                        (c, certified_id(c)) for c in election.claimants
                    ] + list(forged)
                    all_claims = [
                        (v, cid) for v, cid in all_claims
                        if net.is_alive(v)
                    ]
                    claim_ok = bool(all_claims)
                    if claim_ok:
                        winner = max(all_claims, key=lambda vc: vc[1])[0]
                else:
                    claim_ok = (
                        len(election.claimants) == 1
                        and net.is_alive(election.claimants[0])
                    )
                    if claim_ok:
                        winner = election.claimants[0]
                attempts.append(StageAttempt(
                    "election", cycle, attempt, election.rounds, claim_ok,
                    detail=f"claimants={election.claimants}" + (
                        f", forged_claims={sorted(v for v, _ in forged)}"
                        if forged else ""
                    ),
                ))
                if claim_ok:
                    leader = winner
                    break
                if attempt < policy.max_stage_retries:
                    backoff("election", attempt + 1)
                    candidates = [
                        c for c in candidates
                        if net.is_alive(c) and c not in blacklist
                    ]
                    if not candidates:
                        break
            net.materialize_stage("election")
            if leader < 0 or not net.is_alive(leader):
                note("election: no live leader emerged")
                continue
            note(f"leader elected: node {leader}")
            if byz is not None:
                byz.notice_leader(leader)

            # ---- Stage 2: distributed BFS (retry on uncovered nodes) ---
            parent: Optional[List[int]] = None
            distance: Optional[List[int]] = None
            for attempt in range(policy.max_stage_retries + 1):
                if over_budget() or not net.is_alive(leader):
                    break
                bfs = build_distributed_bfs(
                    net, leader, rng,
                    depth_bound=self.depth_bound,
                    epochs_per_phase=policy.escalated(
                        params.bfs_epochs(net), attempt
                    ),
                    trace=self.trace,
                )
                charge("bfs", bfs.rounds)
                covered = all(
                    bfs.distance[v] >= 0
                    for v in range(n) if net.is_alive(v)
                )
                attempts.append(StageAttempt(
                    "bfs", cycle, attempt, bfs.rounds, covered,
                ))
                if covered:
                    parent, distance = bfs.parent, bfs.distance
                    break
                parent, distance = bfs.parent, bfs.distance
                if attempt < policy.max_stage_retries:
                    backoff("bfs", attempt + 1)
            net.materialize_stage("bfs")
            if parent is None or not net.is_alive(leader):
                note("bfs: leader crashed during tree construction")
                continue

            if auth:
                # Layer audit: every adoption sets child = announced + 1,
                # and honest announcements equal the announcer's recorded
                # layer, so an edge with distance[child] !=
                # distance[parent] + 1 convicts the parent of layer
                # misreporting.  Victims are detached and re-parented at
                # the next repair pass.
                liars = {
                    parent[v] for v in range(n)
                    if v != leader and distance[v] >= 0 and parent[v] >= 0
                    and (distance[parent[v]] < 0
                         or distance[v] != distance[parent[v]] + 1)
                }
                liars.discard(leader)
                if liars:
                    convict(sorted(liars), "BFS layer misreporting")
                    detached = 0
                    for v in range(n):
                        if parent[v] in liars:
                            parent[v] = -1
                            distance[v] = -1
                            detached += 1
                    note(
                        f"bfs: audit convicted {len(liars)} lying "
                        f"parents; {detached} victims detached for repair"
                    )

            # ---- Stage 3: collection (repair + retry on unacked) -------
            collection_params = params.with_overrides(
                max_collection_phases=min(
                    params.max_collection_phases,
                    policy.collection_phase_cap,
                )
            )
            root_holdings = {
                pid for pid in remaining if origin_of[pid] == leader
            }
            collected_order: List[int] = sorted(root_holdings)
            for attempt in range(policy.max_stage_retries + 1):
                if over_budget() or not net.is_alive(leader):
                    break
                jam_before_collection = (
                    net.rx_suppressed_jam + net.rx_jammed_adversary
                )
                prune_lost(root_holdings)
                parent, distance = run_repair(parent, distance)
                if blacklist:
                    attached = attached_set(
                        parent, distance, leader,
                        lambda v: net.is_alive(v) and v not in blacklist,
                    )
                else:
                    attached = attached_set(
                        parent, distance, leader, net.is_alive
                    )
                to_collect = [
                    by_pid[pid] for pid in sorted(remaining)
                    if pid not in root_holdings
                    and origin_of[pid] in attached
                ]
                if not to_collect:
                    attempts.append(StageAttempt(
                        "collection", cycle, attempt, 0, True,
                        detail="nothing to collect",
                    ))
                    break
                collection = run_collection_stage(
                    net, parent, distance, leader, to_collect,
                    collection_params, rng,
                    depth_bound=self.depth_bound,
                    trace=self.trace,
                    blacklist=frozenset(blacklist),
                )
                charge("collection", collection.rounds)
                byz_rx_discarded_total += collection.byzantine_rx_discarded
                forged_acks_total += collection.forged_acks_rejected
                if collection.flagged:
                    convict(collection.flagged, "forged collection traffic")
                for pid in collection.collected_order:
                    if pid not in root_holdings:
                        root_holdings.add(pid)
                        collected_order.append(pid)
                ok = collection.all_collected and net.is_alive(leader)
                attempts.append(StageAttempt(
                    "collection", cycle, attempt, collection.rounds, ok,
                    detail=f"collected={len(collection.collected_order)}"
                           f"/{len(to_collect)}",
                ))
                if ok:
                    break
                if auth:
                    # Quorum path audit: a silent black hole leaves no
                    # cryptographic evidence, so count how many failing
                    # origin→root paths each interior relay sits on.
                    # Relays on any succeeding path are exonerated;
                    # repeat offenders are *suspected* (routed around at
                    # the next repair), never convicted.
                    collected_now = set(collection.collected_order)
                    exonerated: Set[int] = set()
                    accused: List[int] = []
                    for pkt in to_collect:
                        path = interior_path(parent, pkt.origin)
                        if path is None:
                            continue
                        if pkt.pid in collected_now:
                            exonerated.update(path)
                        else:
                            accused.extend(path)
                    for v in exonerated:
                        suspicion.pop(v, None)
                    promoted: Set[int] = set()
                    for v in accused:
                        if (v in exonerated or v in blacklist
                                or v in suspects or v == leader):
                            continue
                        suspicion[v] = suspicion.get(v, 0) + 1
                        if suspicion[v] >= policy.audit_quorum:
                            promoted.add(v)
                    if promoted:
                        suspects.update(promoted)
                        note(
                            f"audit: routing around suspected relays "
                            f"{sorted(promoted)} "
                            f"(quorum {policy.audit_quorum} failing paths)"
                        )
                if attempt < policy.max_stage_retries:
                    jam_delta = (
                        net.rx_suppressed_jam + net.rx_jammed_adversary
                        - jam_before_collection
                    )
                    if jam_delta:
                        note(
                            f"collection: jamming-consistent stall "
                            f"({jam_delta} receptions suppressed); "
                            f"retrying with escalated budget"
                        )
                    backoff("collection", attempt + 1)
            net.materialize_stage("collection")
            if not net.is_alive(leader):
                note("collection: leader crashed; re-electing")
                continue

            # ---- Stage 4: dissemination (repair + retry; detection-
            # driven escalation under jamming/corruption) ---------------
            for attempt in range(policy.max_stage_retries + 1):
                if over_budget() or not net.is_alive(leader):
                    break
                parent, distance = run_repair(parent, distance)
                to_send = [
                    by_pid[pid] for pid in collected_order
                    if pid in remaining
                ]
                if not to_send:
                    break
                jam_before = (
                    net.rx_suppressed_jam + net.rx_jammed_adversary
                )
                diss_params = (
                    params if attempt == 0 else params.with_overrides(
                        forward_epochs_factor=(
                            params.forward_epochs_factor
                            * policy.budget_escalation ** attempt
                        )
                    )
                )
                safe_distance = [
                    d if d >= 0 else 1 for d in distance
                ]
                safe_distance[leader] = 0
                dissemination = run_dissemination_stage(
                    net, safe_distance, leader, to_send, diss_params,
                    rng, trace=self.trace,
                    blacklist=frozenset(blacklist),
                )
                charge("dissemination", dissemination.rounds)
                corrupt_discarded_total += dissemination.corrupted_discarded
                mis_decodes_total += dissemination.mis_decodes
                byz_rx_discarded_total += dissemination.byzantine_rx_discarded
                poisoned_rows_total += dissemination.poisoned_rows_attributed
                if dissemination.flagged_senders:
                    convict(
                        dissemination.flagged_senders, "poisoned coded rows"
                    )

                # a mis-decoded (node, group) believes it holds the group
                # but the data is wrong: never count it as delivered
                bad_holders: Dict[int, Set[int]] = {}
                for v, j in dissemination.mis_decoded_receivers:
                    bad_holders.setdefault(j, set()).add(v)
                width = dissemination.group_width
                for i, pkt in enumerate(to_send):
                    j = i // width
                    holders = [
                        int(v) for v in np.nonzero(
                            dissemination.has_group[:, j]
                        )[0]
                        if int(v) not in bad_holders.get(j, ())
                    ]
                    knows[holders, pid_col[pkt.pid]] = True
                delivered_now = [
                    pkt.pid for pkt in to_send
                    if all(
                        knows[v, pid_col[pkt.pid]]
                        for v in range(n)
                        if net.is_alive(v) and v not in blacklist
                    )
                ]
                for pid in delivered_now:
                    remaining.discard(pid)
                ok = all(
                    pkt.pid not in remaining for pkt in to_send
                )
                attempts.append(StageAttempt(
                    "dissemination", cycle, attempt,
                    dissemination.rounds, ok,
                    detail=f"delivered={len(delivered_now)}"
                           f"/{len(to_send)}, corrupted="
                           f"{dissemination.corrupted_discarded}, "
                           f"mis_decodes={dissemination.mis_decodes}",
                ))
                if ok:
                    break
                if attempt < policy.max_stage_retries:
                    # detection-driven escalation: name the adversary the
                    # evidence points at before deepening the schedules
                    jam_delta = (
                        net.rx_suppressed_jam + net.rx_jammed_adversary
                        - jam_before
                    )
                    depth = policy.budget_escalation ** (attempt + 1)
                    undelivered_groups = {
                        i // width for i, pkt in enumerate(to_send)
                        if pkt.pid in remaining
                    }
                    if (dissemination.corrupted_discarded
                            or dissemination.mis_decodes
                            or dissemination.poisoned_rows_attributed):
                        note(
                            f"dissemination: corruption detected "
                            f"({dissemination.corrupted_discarded} rows "
                            f"quarantined, "
                            f"{dissemination.poisoned_rows_attributed} "
                            f"poisoned rows attributed, "
                            f"{dissemination.mis_decodes} "
                            f"mis-decodes); re-requesting "
                            f"{len(undelivered_groups)} groups with "
                            f"Decay depth x{depth:.2f}"
                        )
                    elif jam_delta:
                        note(
                            f"dissemination: jamming-consistent stall "
                            f"({jam_delta} receptions suppressed); "
                            f"re-requesting {len(undelivered_groups)} "
                            f"groups with Decay depth x{depth:.2f}"
                        )
                    backoff("dissemination", attempt + 1)
            net.materialize_stage("dissemination")
            if not remaining:
                break
            if not net.is_alive(leader):
                note("dissemination: leader crashed; re-electing")
                continue
            # Retries exhausted with a live leader: give up honestly.
            break

        # ---- final accounting ------------------------------------------
        # Packets the (live) current root already collected are not lost
        # even when their origin has since crashed — merely undelivered.
        prune_lost(
            root_holdings
            if leader >= 0 and net.is_alive(leader)
            else set()
        )
        survivors = net.alive_nodes()
        honest_survivors = [v for v in survivors if v not in blacklist]
        non_lost = [pid for pid in by_pid if pid not in lost]
        if honest_survivors and non_lost:
            cols = [pid_col[pid] for pid in non_lost]
            informed = float(
                knows[np.ix_(honest_survivors, cols)].mean()
            )
        else:
            informed = 1.0
        undelivered = sorted(remaining)
        all_lost = bool(by_pid) and not non_lost
        success = (
            not watchdog[0] and not undelivered and informed >= 1.0
            and not all_lost
        )
        byz_nodes = byz.nodes if byz is not None else frozenset()
        mis_attributions = sum(
            1 for v in blacklist
            if v not in byz_nodes and v not in self.initial_blacklist
        )
        retries = sum(1 for a in attempts if a.attempt > 0)
        for clock, kind, target in net.events_applied:
            timeline.append((clock, f"fault: {kind} {target}"))
        timeline.sort(key=lambda entry: entry[0])

        return SupervisedResult(
            n=n,
            k=k,
            success=success,
            informed_fraction=informed,
            coverage=(len(non_lost) / k) if k else 1.0,
            leader=leader,
            total_rounds=self._rounds,
            round_budget=budget,
            watchdog_tripped=watchdog[0],
            timing=timing,
            attempts=attempts,
            repairs=repairs,
            reelections=max(0, reelections),
            retries=retries,
            packets_lost=sorted(lost),
            packets_undelivered=undelivered,
            survivors=survivors,
            fault_stats=net.fault_stats(),
            corrupt_discarded=corrupt_discarded_total,
            mis_decodes=mis_decodes_total,
            timeline=timeline,
            trace=self.trace,
            blacklisted=sorted(blacklist),
            suspected=sorted(suspects),
            byzantine_rx_discarded=byz_rx_discarded_total,
            forged_acks_rejected=forged_acks_total,
            poisoned_rows_attributed=poisoned_rows_total,
            mis_attributions=mis_attributions,
            all_lost=all_lost,
        )
